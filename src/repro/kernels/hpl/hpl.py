"""Distributed HPL (paper Section 5.1).

A two-dimensional block-cyclic data distribution and a right-looking LU
factorization with row-partial pivoting and a recursive panel factorization.
The communication idioms follow the paper: teams for the pivot search and the
row/column broadcasts, and FINISH_ASYNC-pragma'd message exchanges for row
swaps ("a row swap is a simple message exchange").

Like the paper's implementation — and unlike the reference HPL — there is no
configurable look-ahead: phases alternate synchronously.  The panel is
gathered to and factored at the diagonal block's owner (the recursive panel
factorization), then redistributed via the column team.
"""

from __future__ import annotations

from typing import Optional


from repro.errors import KernelError
from repro.harness.calibration import DEFAULT_CALIBRATION, Calibration
from repro.harness.results import KernelResult
from repro.kernels.hpl.grid import ProcessGrid, default_grid
from repro.kernels.hpl.lu import (
    panel_factor,
    reconstruction_residual,
    update_trailing,
    update_u_row,
)
from repro.runtime import PlaceGroup, Pragma, Team, broadcast_spawn
from repro.runtime.runtime import ApgasRuntime
from repro.sim.rng import RngStream


def run_hpl(
    rt: ApgasRuntime,
    N: int,
    NB: int,
    grid: Optional[ProcessGrid] = None,
    seed: int = 0,
    modeled_N: Optional[int] = None,
    modeled_NB: int = 360,
    calibration: Calibration = DEFAULT_CALIBRATION,
    group: Optional[PlaceGroup] = None,
) -> KernelResult:
    """Factor a random N x N system over ``group``; returns flop/s.

    The process grid is laid out over group *ranks* and mapped to absolute
    places at every communication boundary.

    ``N`` must be a multiple of ``NB``; an even block-cyclic layout is not
    required — trailing counts just become uneven, as in real HPL.

    ``modeled_N`` charges time for the paper-scale problem while the real
    N x N numerics run: trailing updates scale by ``s^3`` (s = modeled_N/N,
    blocking-independent), wire volumes by ``s^2``, and the blocking-sensitive
    panel/triangular-solve phases are charged at the paper's block size
    ``modeled_NB`` (default 360), since each simulated step stands for
    ``s*NB/modeled_NB`` paper panels.
    """
    pg = PlaceGroup.world(rt) if group is None else group
    members = list(pg)
    rank_of = {pl: i for i, pl in enumerate(members)}
    grid = grid or default_grid(len(members))
    if grid.places != len(members):
        raise KernelError(f"grid {grid.P}x{grid.Q} does not match {len(members)} places")
    if N % NB:
        raise KernelError("N must be a multiple of NB")
    nblk = N // NB
    s = 1.0 if modeled_N is None else modeled_N / N
    fscale, bscale = s**3, s**2
    pnb = NB if modeled_N is None else modeled_NB  # blocking-sensitive phases
    pscale = pnb * s * s
    if modeled_N is not None and nblk > 1:
        # coarse blocking sums 2*NB^3*j^2 over j<nblk, which undercounts the
        # continuous 2/3*N^3; rescale so the charged DGEMM total is exact
        # charged = 2*NB^3 * sum(j^2) ; target = (2/3) * (nblk*NB)^3
        fscale *= 2.0 * nblk**3 / ((nblk - 1) * nblk * (2 * nblk - 1))
    rng = RngStream(seed, "hpl/matrix")
    A = rng.uniform(-0.5, 0.5, size=(N, N))
    A0 = A.copy()
    all_swaps: list = []
    step_swaps: dict[int, list] = {}

    world = Team(rt, members)
    row_teams = (
        {pi: Team(rt, [members[r] for r in grid.row_places(pi)]) for pi in range(grid.P)}
        if grid.Q > 1
        else {}
    )
    col_teams = (
        {pj: Team(rt, [members[r] for r in grid.col_places(pj)]) for pj in range(grid.Q)}
        if grid.P > 1
        else {}
    )

    def dgemm_rate_for(place: int) -> float:
        octant = rt.topology.octant_of(place)
        crowd = len(rt.topology.places_on_octant(octant))
        return calibration.dgemm_rate(rt.config, crowd)

    def owned_blocks_after(k: int, mod: int, mine: int) -> int:
        """Block indices in (k, nblk) owned by coordinate ``mine`` (mod P/Q)."""
        return sum(1 for b in range(k + 1, nblk) if b % mod == mine)

    def step_math(k: int) -> list:
        """The actual numerics of step k, executed once by the diagonal owner."""
        if k not in step_swaps:
            k0 = k * NB
            swaps = panel_factor(A, k0, NB)
            update_u_row(A, k0, NB)
            update_trailing(A, k0, NB)
            step_swaps[k] = swaps
            all_swaps.extend(swaps)
        return step_swaps[k]

    def swap_recv(ctx):
        return None  # the row data lands in local storage; no compute

    def body(ctx):
        me = rank_of[ctx.here]
        pi, pj = grid.coords_of(me)
        rate = dgemm_rate_for(ctx.here)
        rteam = row_teams.get(pi)
        cteam = col_teams.get(pj)
        for k in range(nblk):
            k0 = k * NB
            rows_below = N - k0
            diag = members[grid.owner_of_block(k, k)]
            panel_share = int(bscale * rows_below * NB * 8) // grid.P  # one place's slice

            # -- panel: gather to the diagonal owner, recursive factorization,
            #    pivot search over all rows below, redistribution -------------
            swaps = None
            if pj == k % grid.Q:
                if ctx.here == diag:
                    swaps = step_math(k)
                    yield ctx.compute(flops=pscale * NB * rows_below, flop_rate=rate)
                if cteam is not None:
                    swaps = yield cteam.broadcast(ctx, swaps, root=diag, nbytes=panel_share)

            # -- broadcast panel + pivots along process rows -------------------
            if rteam is not None:
                row_root = members[grid.place_of(pi, k % grid.Q)]
                swaps = yield rteam.broadcast(ctx, swaps, root=row_root, nbytes=panel_share)
            elif swaps is None:
                swaps = step_swaps[k]

            # -- apply row swaps: message exchange between owning process rows --
            row_bytes = int(bscale * max(1, (N - NB) // grid.Q) * 8)
            for r1, r2 in swaps:
                pr1, pr2 = (r1 // NB) % grid.P, (r2 // NB) % grid.P
                if pr1 == pr2:
                    if pi == pr1:  # local swap: memory traffic only
                        yield ctx.compute(
                            mem_bytes=2 * row_bytes, mem_bw=rt.config.place_stream_bandwidth
                        )
                elif pi in (pr1, pr2):
                    partner = members[grid.place_of(pr2 if pi == pr1 else pr1, pj)]
                    with ctx.finish(Pragma.FINISH_ASYNC) as f:
                        ctx.at_async(partner, swap_recv, nbytes=row_bytes)
                    yield f.wait()

            # -- U block row: triangular solves at the owning process row -------
            if pi == k % grid.P:
                u_blocks = owned_blocks_after(k, grid.Q, pj)
                if u_blocks:
                    yield ctx.compute(flops=pscale * u_blocks * NB**2, flop_rate=rate)

            # -- broadcast U down the columns -----------------------------------
            if cteam is not None:
                u_share = int(bscale * max(1, (N - k0 - NB) // grid.Q) * NB * 8)
                yield cteam.broadcast(
                    ctx, None, root=members[grid.place_of(k % grid.P, pj)], nbytes=u_share
                )

            # -- trailing rank-NB update (local DGEMMs) --------------------------
            my_rows = owned_blocks_after(k, grid.P, pi)
            my_cols = owned_blocks_after(k, grid.Q, pj)
            if my_rows and my_cols:
                yield ctx.compute(
                    flops=fscale * 2.0 * NB**3 * my_rows * my_cols, flop_rate=rate
                )
        yield world.barrier(ctx)

    def main(ctx):
        yield from broadcast_spawn(ctx, pg, body)

    rt.run(main)
    residual = reconstruction_residual(A0, A, all_swaps)
    n_eff = N if modeled_N is None else modeled_N
    flops = 2.0 / 3.0 * n_eff**3 + 2.0 * n_eff**2
    rate = flops / rt.now
    return KernelResult(
        kernel="hpl",
        places=len(members),
        sim_time=rt.now,
        value=rate,
        unit="flop/s",
        per_core=rate / len(members),
        verified=bool(residual < 1e-12),
        extra={"residual": residual, "grid": (grid.P, grid.Q), "N": N, "NB": NB},
    )
