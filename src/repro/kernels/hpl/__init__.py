"""Global HPL: dense LU factorization with row-partial pivoting."""

from repro.kernels.hpl.grid import ProcessGrid, default_grid
from repro.kernels.hpl.lu import blocked_lu_inplace, reconstruction_residual
from repro.kernels.hpl.hpl import run_hpl

__all__ = [
    "ProcessGrid",
    "default_grid",
    "blocked_lu_inplace",
    "reconstruction_residual",
    "run_hpl",
]
