"""Portable APGAS programs for seven of the eight kernels (UTS has its own
module, :mod:`repro.kernels.portable.uts_program`).

Every program here is *backend-blind*: it uses only the picklable ``ctx``
subset (module-level worker functions, plain-data messages, ``ctx.store``)
plus the collectives of :mod:`repro.kernels.portable.lib`, so the identical
program text runs on the discrete-event simulator and on real OS processes.
The numerical cores are imported from the corresponding simulator kernels —
the physics is shared, only the orchestration is rewritten portably.

Determinism contract (what the conformance suite asserts): for a fixed seed
and place count, the returned result — including every floating-point bit of
the checksum — is identical on every backend.  See ``lib`` for how reductions
keep FP combination order fixed.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.harness.results import checksum_bytes
from repro.kernels.portable.lib import allreduce, bcast, gather, reduce
from repro.runtime.finish.pragmas import Pragma
from repro.sim.rng import RngStream

#: nominal per-chunk compute charge for the simulator backend (the procs
#: backend ignores it: there, the real CPU time is the real cost)
_TICK = 1e-6


def _digest(*arrays) -> bytes:
    h = hashlib.sha256()
    for arr in arrays:
        h.update(np.ascontiguousarray(arr).tobytes())
    return h.digest()


def _rank_checksum(digests: dict) -> str:
    """Combine per-place digests in rank order into one stable checksum."""
    return checksum_bytes(*(digests[place] for place in sorted(digests)))


def spmd(ctx, worker, params: dict, pragma: Pragma = Pragma.FINISH_SPMD):
    """Run ``worker(ctx, params)`` once at every place under ``pragma``.

    The paper's dominant pattern: one remote activity per place, no stray
    subactivities outside nested finishes.  Use ``yield from spmd(...)``.
    """
    with ctx.finish(pragma) as f:
        for place in ctx.places():
            if place == ctx.here:
                ctx.async_(worker, params)
            else:
                ctx.at_async(place, worker, params)
    yield f.wait()
    return ctx.store.pop("portable:result")


# -- STREAM ---------------------------------------------------------------------------


def stream_worker(ctx, p: dict):
    rng = RngStream(p["seed"], f"portable/stream/{ctx.here}")
    n = p["n_per_place"]
    a = rng.uniform(0.0, 1.0, size=n)
    b = rng.uniform(0.0, 1.0, size=n)
    c = rng.uniform(0.0, 1.0, size=n)
    from repro.kernels.stream.stream import triad

    for _ in range(p["iterations"]):
        yield ctx.compute(seconds=_TICK)
        triad(a, b, c, p["alpha"])
        a, c = c, a  # ping-pong so every iteration changes the inputs
    digests = yield from gather(ctx, "stream", _digest(a, b, c))
    if ctx.here == 0:
        ctx.store["portable:result"] = {
            "checksum": _rank_checksum(digests),
            "n_total": n * ctx.n_places,
            "iterations": p["iterations"],
        }


def stream_main(ctx, **params):
    return (yield from spmd(ctx, stream_worker, params))


# -- RandomAccess ---------------------------------------------------------------------


def ra_worker(ctx, p: dict):
    from repro.kernels.randomaccess.hpcc_rng import stream_slice_fast

    me, P = ctx.here, ctx.n_places
    size = 1 << p["log2_table"]
    lo, hi = size * me // P, size * (me + 1) // P
    table = np.arange(lo, hi, dtype=np.uint64)
    updates = p["updates_per_place"]
    yield ctx.compute(seconds=_TICK)
    values = stream_slice_fast(me * updates, updates)
    index = (values & np.uint64(size - 1)).astype(np.int64)
    owner = index * P // size
    # one bulk exchange: everyone sends one (possibly empty) batch to every
    # other place, so receive counts are deterministic; XOR commutes, so
    # arrival order cannot leak into the table bits
    for q in range(P):
        mask = owner == q
        batch = (index[mask], values[mask])
        if q == me:
            mine = batch
        else:
            ctx.send(q, "ra:upd", batch)
    np.bitwise_xor.at(table, mine[0] - lo, mine[1])  # .at: duplicate indices all land
    for _ in range(P - 1):
        idx, val = yield ctx.recv("ra:upd")
        np.bitwise_xor.at(table, idx - lo, val)
    digests = yield from gather(ctx, "ra", _digest(table))
    if me == 0:
        ctx.store["portable:result"] = {
            "checksum": _rank_checksum(digests),
            "table_size": size,
            "updates": updates * P,
        }


def ra_main(ctx, **params):
    # the paper's pragma for RandomAccess: an irregular communication graph
    return (yield from spmd(ctx, ra_worker, params, pragma=Pragma.FINISH_DENSE))


# -- FFT (six-step with a real all-to-all transpose) ----------------------------------


def fft_worker(ctx, p: dict):
    me, P = ctx.here, ctx.n_places
    n1, n2 = p["n1"], p["n2"]
    N = n1 * n2
    rng = RngStream(p["seed"], "portable/fft")
    x = rng.uniform(-1.0, 1.0, size=N) + 1j * rng.uniform(-1.0, 1.0, size=N)
    # step 1+2: this place's rows of B = x.reshape(n1,n2).T, FFT'd + twiddled
    r0, r1 = n2 * me // P, n2 * (me + 1) // P
    B = x.reshape(n1, n2).T[r0:r1].copy()
    yield ctx.compute(seconds=_TICK)
    B = np.fft.fft(B, axis=1)
    k2 = np.arange(r0, r1)[:, None]
    j1 = np.arange(n1)[None, :]
    B *= np.exp(-2j * np.pi * (k2 * j1) / N)
    # step 3: the distributed transpose — a genuine all-to-all
    d0, d1 = n1 * me // P, n1 * (me + 1) // P
    for q in range(P):
        q0, q1 = n1 * q // P, n1 * (q + 1) // P
        if q == me:
            own = B[:, q0:q1]
        else:
            ctx.send(q, "fft:a2a", (me, B[:, q0:q1]))
    D = np.empty((d1 - d0, n2), dtype=np.complex128)
    D[:, r0:r1] = own.T
    for _ in range(P - 1):
        sender, block = yield ctx.recv("fft:a2a")
        s0, s1 = n2 * sender // P, n2 * (sender + 1) // P
        D[:, s0:s1] = block.T
    # step 4: row FFTs of D; the result rows ARE the transform (column-major)
    yield ctx.compute(seconds=_TICK)
    D = np.fft.fft(D, axis=1)
    blocks = yield from gather(ctx, "fft", (d0, D))
    if me == 0:
        full = np.vstack([blocks[q][1] for q in sorted(blocks)])
        X = full.T.reshape(-1)  # X[j2*n1 + j1] = D[j1, j2]
        ctx.store["portable:result"] = {
            "checksum": checksum_bytes(_digest(X)),
            "n": N,
            "spectrum": X,
        }


def fft_main(ctx, **params):
    # all-to-all transpose traffic: the dense-communication pragma
    return (yield from spmd(ctx, fft_worker, params, pragma=Pragma.FINISH_DENSE))


# -- HPL (block-cyclic right-looking LU) ----------------------------------------------


def _hpl_matrix(seed: int, n: int) -> np.ndarray:
    rng = RngStream(seed, "portable/hpl")
    return rng.uniform(-0.5, 0.5, size=(n, n))


def hpl_worker(ctx, p: dict):
    from scipy.linalg import solve_triangular

    from repro.kernels.hpl.lu import panel_factor

    me, P = ctx.here, ctx.n_places
    n, nb = p["n"], p["nb"]
    A = _hpl_matrix(p["seed"], n)
    nblocks = n // nb
    owned = [bk for bk in range(nblocks) if bk % P == me]
    all_swaps = []
    for bk in range(nblocks):
        k0 = bk * nb
        owner = bk % P
        if me == owner:
            yield ctx.compute(seconds=_TICK)
            swaps = panel_factor(A, k0, nb)
            payload = (swaps, A[k0:, k0 : k0 + nb].copy())
        else:
            payload = None
        swaps, panel = yield from bcast(ctx, f"lu{bk}", payload, root=owner)
        all_swaps.extend(swaps)
        if me != owner:
            # replay the pivot swaps on this place's columns, then install
            # the factored panel (its own columns of it were stale anyway)
            for r1, r2 in swaps:
                A[[r1, r2]] = A[[r2, r1]]
            A[k0:, k0 : k0 + nb] = panel
        L11 = A[k0 : k0 + nb, k0 : k0 + nb]
        trailing = [bj for bj in owned if bj > bk]
        if trailing:
            yield ctx.compute(seconds=_TICK)
        for bj in trailing:
            c0, c1 = bj * nb, (bj + 1) * nb
            A[k0 : k0 + nb, c0:c1] = solve_triangular(
                L11, A[k0 : k0 + nb, c0:c1], lower=True, unit_diagonal=True
            )
            A[k0 + nb :, c0:c1] -= A[k0 + nb :, k0 : k0 + nb] @ A[k0 : k0 + nb, c0:c1]
    mine = {bk: A[:, bk * nb : (bk + 1) * nb] for bk in owned}
    blocks = yield from gather(ctx, "hpl", mine)
    if me == 0:
        LU = np.empty((n, n))
        for place_blocks in blocks.values():
            for bk, cols in place_blocks.items():
                LU[:, bk * nb : (bk + 1) * nb] = cols
        from repro.kernels.hpl.lu import reconstruction_residual

        residual = reconstruction_residual(_hpl_matrix(p["seed"], n), LU, all_swaps)
        ctx.store["portable:result"] = {
            "checksum": checksum_bytes(_digest(LU), repr(all_swaps).encode()),
            "residual": residual,
            "n": n,
        }


def hpl_main(ctx, **params):
    return (yield from spmd(ctx, hpl_worker, params))


# -- KMeans ---------------------------------------------------------------------------


def kmeans_iteration(ctx, points, centroids, tag: str):
    """One assign/allreduce/update round; returns the new centroids.

    Factored out of :func:`kmeans_worker` so the resilient epoch body (one
    epoch = one iteration, :mod:`repro.kernels.portable.resilient`) shares
    the exact message protocol and FP combination order — which is what
    makes a recovered run's checksum bit-identical to the fault-free run.
    """
    from repro.kernels.kmeans.kmeans import assign_and_accumulate, update_centroids

    yield ctx.compute(seconds=_TICK)
    sums, counts = assign_and_accumulate(points, centroids)
    sums, counts = yield from allreduce(ctx, tag, (sums, counts), _kmeans_add)
    return update_centroids(centroids, sums, counts)


def kmeans_worker(ctx, p: dict):
    from repro.kernels.kmeans.kmeans import generate_points, initial_centroids

    me = ctx.here
    points = generate_points(p["seed"], me, p["n_per_place"], p["dim"])
    seeds = initial_centroids(p["seed"], p["k"], p["dim"]) if me == 0 else None
    centroids = yield from bcast(ctx, "km:init", seeds)
    for it in range(p["iterations"]):
        centroids = yield from kmeans_iteration(ctx, points, centroids, f"km:{it}")
    if me == 0:
        ctx.store["portable:result"] = {
            "checksum": checksum_bytes(_digest(centroids)),
            "centroids": centroids,
            "k": p["k"],
        }


def _kmeans_add(x, y):
    return x[0] + y[0], x[1] + y[1]


def kmeans_main(ctx, **params):
    return (yield from spmd(ctx, kmeans_worker, params))


# -- Smith-Waterman -------------------------------------------------------------------


def sw_worker(ctx, p: dict):
    from repro.kernels.smithwaterman.sw import random_sequence, safe_overlap, sw_score

    me, P = ctx.here, ctx.n_places
    target = random_sequence(p["seed"], "target", p["target_len"])
    query = random_sequence(p["seed"], "query", p["query_len"])
    overlap = safe_overlap(len(query))
    lo = len(target) * me // P
    hi = min(len(target), len(target) * (me + 1) // P + overlap)
    yield ctx.compute(seconds=_TICK)
    local_best = int(sw_score(query, target[lo:hi]))
    best = yield from reduce(ctx, "sw", local_best, max)
    if me == 0:
        ctx.store["portable:result"] = {
            "checksum": checksum_bytes(str(best).encode()),
            "score": best,
        }


def _sw_local_check(ctx, p: dict):
    """FINISH_LOCAL leg: hash the query at home (no remote activity)."""
    from repro.kernels.smithwaterman.sw import random_sequence

    yield ctx.compute(seconds=_TICK)
    query = random_sequence(p["seed"], "query", p["query_len"])
    ctx.store["sw:query_digest"] = _digest(query).hex()


def _sw_notify(ctx, home: int):
    """FINISH_ASYNC leg: a single remote activity, acked via mailbox."""
    yield ctx.compute(seconds=_TICK)
    ctx.send(home, "sw:ack", ("ok", ctx.here))


def _sw_probe(ctx, home: int):
    """FINISH_HERE first leg: runs remotely, spawns the return leg home."""
    yield ctx.compute(seconds=_TICK)
    ctx.at_async(home, _sw_probe_return)


def _sw_probe_return(ctx):
    """FINISH_HERE second leg: terminates at home (its join costs no message)."""
    yield ctx.compute(seconds=_TICK)
    ctx.store["sw:probe_returned"] = True


def sw_main(ctx, **params):
    result = yield from spmd(ctx, sw_worker, params)
    # exercise the remaining pragmas so the conformance suite covers every
    # finish protocol: LOCAL (zero messages), ASYNC (one remote join),
    # HERE (a round trip whose home leg joins for free)
    far = ctx.n_places - 1
    with ctx.finish(Pragma.FINISH_LOCAL) as f:
        ctx.async_(_sw_local_check, params)
    yield f.wait()
    with ctx.finish(Pragma.FINISH_ASYNC) as f:
        ctx.at_async(far, _sw_notify, ctx.here)
    yield f.wait()
    yield ctx.recv("sw:ack")
    with ctx.finish(Pragma.FINISH_HERE) as f:
        ctx.at_async(far, _sw_probe, ctx.here)
    yield f.wait()
    result["query_digest"] = ctx.store.pop("sw:query_digest")
    result["probe_returned"] = ctx.store.pop("sw:probe_returned")
    return result


# -- Betweenness centrality -----------------------------------------------------------


def bc_worker(ctx, p: dict):
    from repro.kernels.bc.brandes import brandes_betweenness
    from repro.kernels.bc.rmat import rmat_graph

    me, P = ctx.here, ctx.n_places
    graph = rmat_graph(p["scale"], edge_factor=p["edge_factor"], seed=p["seed"])
    lo, hi = graph.n * me // P, graph.n * (me + 1) // P
    yield ctx.compute(seconds=_TICK)
    partial = brandes_betweenness(graph, sources=range(lo, hi))
    total = yield from reduce(ctx, "bc", partial, _bc_add)
    if me == 0:
        centrality = total / 2.0  # undirected halving, as in the full-source path
        ctx.store["portable:result"] = {
            "checksum": checksum_bytes(_digest(centrality)),
            "centrality": centrality,
            "n": graph.n,
            "m": graph.m,
        }


def _bc_add(x, y):
    return x + y


def bc_main(ctx, **params):
    return (yield from spmd(ctx, bc_worker, params))
