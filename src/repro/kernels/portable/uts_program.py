"""Portable UTS: interval work stealing over plain messages.

The tree and its compact interval representation come straight from
:mod:`repro.kernels.uts.tree` — a :class:`~repro.kernels.uts.tree.UtsBag` is
plain picklable data, so stolen loot ships over a real socket unchanged.
What this module adds is a backend-blind balancing protocol (the simulator's
GLB fabric passes live objects through its transport, so it cannot cross a
process boundary):

* every place runs one worker activity that alternates between draining its
  bag one chunk at a time and polling a control mailbox;
* idle places steal round-robin: a ``steal`` request is always answered,
  with ``loot`` (half of every interval — the paper's refined policy) or
  ``empty``;
* termination is a count-based double wave: a token circulates the ring
  accumulating (loot sent, loot received, everyone idle); the root declares
  termination after two consecutive waves that are balanced, all-idle, and
  identical — at that point no loot can be in flight.  The root then
  broadcasts ``stop`` and gathers per-place node counts.

The total node count is invariant under any steal interleaving (intervals
are conserved, only ownership moves), so both backends — and the paper's GLB
runs with the same tree parameters — agree on the count and therefore on the
checksum.
"""

from __future__ import annotations

from repro.errors import DeadPlaceError
from repro.harness.results import checksum_bytes
from repro.kernels.uts.tree import UtsBag, UtsParams

#: nodes visited between mailbox polls (also the cooperative-yield grain)
CHUNK = 512

#: idle backoff between steal rounds: virtual on the simulator, real
#: (sub-millisecond) on procs — keeps an idle place from hammering the wires
_IDLE_BACKOFF = 5e-4


def _known_dead(ctx) -> tuple:
    """Places ``ctx`` knows to be dead (procs backend; empty on the sim)."""
    probe = getattr(ctx, "dead_places", None)
    return tuple(probe()) if callable(probe) else ()


def uts_loop(ctx, p: dict, ctl_box: str = "uts:ctl", abort_on_death: bool = False):
    """The drain/steal/terminate loop; returns this place's processed count.

    Factored out of :func:`uts_worker` so the resilient retry-from-scratch
    body (:mod:`repro.kernels.portable.resilient`) can run the identical
    protocol on an attempt-scoped control mailbox (``ctl_box``) — stale
    steals and termination tokens from an aborted attempt land in boxes the
    retry never reads.  With ``abort_on_death`` the loop raises
    :class:`DeadPlaceError` as soon as a peer death is known, instead of
    idling forever on steal replies or termination tokens that cannot come.
    """
    me, P = ctx.here, ctx.n_places
    params = UtsParams(
        b0=p["b0"], depth=p["depth"], seed=p["seed"], rng_mode=p["rng_mode"]
    )
    bag = UtsBag.root(params) if me == 0 else UtsBag(params)
    processed = 0
    loot_sent = 0
    loot_recv = 0
    awaiting_reply = False
    victim_offset = 1
    held_token = None
    prev_wave = None
    stop = False
    # single-place runs need no protocol at all
    if P == 1:
        while not bag.is_empty():
            processed += bag.process(CHUNK)
            yield ctx.compute(seconds=_IDLE_BACKOFF)
        return processed

    if me == 0:
        held_token = (0, 0, True)  # the root injects the first wave when idle

    while not stop:
        if abort_on_death:
            dead = _known_dead(ctx)
            if dead:
                raise DeadPlaceError(
                    dead[0], detected_by=f"uts worker @{me}",
                    detail="peer died mid-attempt",
                )
        # 1. drain control messages
        while True:
            ok, msg = ctx.try_recv(ctl_box)
            if not ok:
                break
            kind = msg[0]
            if kind == "steal":
                thief = msg[1]
                loot = None if bag.is_empty() else bag.split()
                if loot is None:
                    ctx.send(thief, ctl_box, ("empty",))
                else:
                    loot_sent += 1
                    ctx.send(
                        thief, ctl_box,
                        ("loot", loot.intervals, loot._bootstrap),
                    )
            elif kind == "loot":
                loot_recv += 1
                awaiting_reply = False
                stolen = UtsBag(params, intervals=msg[1], bootstrap_nodes=msg[2])
                bag.merge(stolen)
            elif kind == "empty":
                awaiting_reply = False
            elif kind == "token":
                held_token = msg[1]
            elif kind == "stop":
                stop = True
        if stop:
            break
        # 2. work if there is any
        if not bag.is_empty():
            processed += bag.process(CHUNK)
            yield ctx.compute(seconds=_IDLE_BACKOFF)
            continue
        # 3. idle: advance the termination wave if we hold the token
        if held_token is not None:
            sent_acc, recv_acc, all_idle = held_token
            held_token = None
            if me == 0:
                wave = (sent_acc, recv_acc, all_idle)
                balanced = all_idle and sent_acc == recv_acc
                if balanced and wave == prev_wave:
                    for q in range(1, P):
                        ctx.send(q, ctl_box, ("stop",))
                    stop = True
                    break
                prev_wave = wave if balanced else None
                ctx.send(1, ctl_box, ("token", (loot_sent, loot_recv, True)))
            else:
                token = (sent_acc + loot_sent, recv_acc + loot_recv, all_idle)
                ctx.send((me + 1) % P, ctl_box, ("token", token))
        # 4. idle: try to steal (one outstanding request at a time)
        if not awaiting_reply:
            victim = (me + victim_offset) % P
            victim_offset = victim_offset % (P - 1) + 1
            if victim != me:
                awaiting_reply = True
                ctx.send(victim, ctl_box, ("steal", me))
        yield ctx.sleep(_IDLE_BACKOFF)

    return processed


def uts_worker(ctx, p: dict):
    me, P = ctx.here, ctx.n_places
    processed = yield from uts_loop(ctx, p)
    if P == 1:
        ctx.store["portable:result"] = _result(processed)
        return
    counts = yield from _gather_counts(ctx, processed)
    if me == 0:
        total = sum(counts.values())
        ctx.store["portable:result"] = _result(total, per_place=counts)


def _gather_counts(ctx, processed: int):
    me, P = ctx.here, ctx.n_places
    if me != 0:
        ctx.send(0, "uts:counts", (me, processed))
        return None
    counts = {0: processed}
    for _ in range(P - 1):
        place, n = yield ctx.recv("uts:counts")
        counts[place] = n
    return counts


def _result(total: int, per_place=None) -> dict:
    return {
        "checksum": checksum_bytes(str(total).encode()),
        "nodes": total,
        # underscore prefix: per-run diagnostic, excluded from conformance —
        # steal interleavings (and thus work placement) are backend-variant
        "_per_place": per_place or {0: total},
    }


def uts_main(ctx, **params):
    from repro.kernels.portable.programs import spmd
    from repro.runtime.finish.pragmas import Pragma

    # the paper's refined configuration runs UTS under FINISH_DENSE
    return (yield from spmd(ctx, uts_worker, params, pragma=Pragma.FINISH_DENSE))
