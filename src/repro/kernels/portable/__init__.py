"""Portable kernel programs: one program text, any execution backend.

The simulator's full kernels pass live objects (finish objects, closures,
GLB fabric) through the in-process transport, which no real wire can carry.
The programs here restrict themselves to the *portable* ``ctx`` subset —
module-level activity functions, picklable arguments, mailbox messages,
``ctx.store`` — and therefore run unmodified on the discrete-event simulator
(:class:`~repro.xrt.backend.SimBackend`) and on one-OS-process-per-place
(:class:`~repro.xrt.backend.ProcsBackend`).  They reuse the simulator
kernels' numerical cores, and their results are deterministic bit-for-bit
for a fixed (kernel, places, params) — the property the differential
conformance suite (:mod:`repro.xrt.conformance`) is built on.

``build_program(kernel, places, **params)`` returns the ``main`` activity
for any of the eight kernels; parameters default to small conformance-scale
problems (UTS defaults to the CLI's tree so ``repro run uts --backend procs``
matches the classic simulator checksum).
"""

from __future__ import annotations

import functools
from typing import Any, Callable

from repro.errors import KernelError
from repro.kernels.portable.programs import (
    bc_main,
    fft_main,
    hpl_main,
    kmeans_main,
    ra_main,
    spmd,
    stream_main,
    sw_main,
)
from repro.kernels.portable.uts_program import uts_main

#: per-kernel (main, small-scale defaults)
_PROGRAMS: dict[str, tuple[Callable, dict]] = {
    "stream": (stream_main, {"n_per_place": 4096, "iterations": 4, "alpha": 3.0, "seed": 11}),
    "randomaccess": (ra_main, {"log2_table": 12, "updates_per_place": 2048}),
    "fft": (fft_main, {"n1": 16, "n2": 16, "seed": 5}),
    "hpl": (hpl_main, {"n": 64, "nb": 8, "seed": 7}),
    "uts": (uts_main, {"depth": 9, "b0": 4.0, "seed": 19, "rng_mode": "splitmix"}),
    "kmeans": (kmeans_main, {"n_per_place": 256, "dim": 4, "k": 8, "iterations": 5, "seed": 3}),
    "smithwaterman": (sw_main, {"target_len": 512, "query_len": 32, "seed": 13}),
    "bc": (bc_main, {"scale": 7, "edge_factor": 8, "seed": 2}),
}

PORTABLE_KERNELS = sorted(_PROGRAMS)


def program_defaults(kernel: str) -> dict:
    """A copy of ``kernel``'s default parameter set (KernelError if unknown)."""
    try:
        return dict(_PROGRAMS[kernel][1])
    except KeyError:
        raise KernelError(
            f"no portable program for kernel {kernel!r}; "
            f"choose from {PORTABLE_KERNELS}"
        ) from None


def build_program(kernel: str, places: int, **params: Any) -> Callable:
    """The portable ``main(ctx)`` for ``kernel`` with ``params`` overrides."""
    try:
        main, defaults = _PROGRAMS[kernel]
    except KeyError:
        raise KernelError(
            f"no portable program for kernel {kernel!r}; "
            f"choose from {PORTABLE_KERNELS}"
        ) from None
    kwargs = dict(defaults)
    unknown = set(params) - set(defaults)
    if unknown:
        raise KernelError(
            f"unknown parameter(s) {sorted(unknown)} for portable kernel "
            f"{kernel!r}; accepted: {sorted(defaults)}"
        )
    kwargs.update(params)
    bound = functools.partial(main, **kwargs)
    bound.__name__ = f"portable:{kernel}"  # type: ignore[attr-defined]
    return bound


__all__ = ["PORTABLE_KERNELS", "build_program", "program_defaults", "spmd"]
