"""Resilient portable programs: epoch checkpoint/restore over real processes.

The simulator's :class:`~repro.resilient.checkpoint.EpochCoordinator` passes
live hook objects and a shared :class:`~repro.resilient.store.ResilientStore`
through the in-process transport — none of which crosses an OS process
boundary.  This module is its *portable* counterpart: the same epoch contract
(commit at a tolerant dense finish, abort on a mid-epoch death, revive +
restore + retry), rebuilt from the picklable ``ctx`` subset so it runs on the
one-OS-process-per-place backend where a "place death" is a SIGKILLed
process and "revive" forks a fresh one
(:meth:`~repro.xrt.procs.runtime.ProcsContext.revive`).

The moving parts:

* place 0's ``main`` runs :func:`run_resilient_epochs` — the coordinator;
* each epoch is one ``tolerate_death`` FINISH_DENSE wave of
  :func:`_member_epoch` activities; a member runs the kernel's epoch body
  and ships its checkpoint blob to place 0's ``resil:ckpt`` mailbox *before*
  its JOIN, so the star router's FIFO guarantees that when the finish fires
  every surviving member's blob has already arrived;
* collective traffic inside an attempt uses an **attempt-scoped tag**
  (``e{epoch}a{attempt}``): messages from an aborted attempt land in
  mailboxes the retry never reads, and a revived place's fresh collective
  counters line up with the survivors' by construction;
* on an abort the coordinator revives dead places, rolls *every* member back
  to the last committed blobs (survivors may have advanced state that no
  longer matches), and re-runs the same epoch.  Kernel bodies are
  deterministic given restored state, so the retry commits byte-identical
  blobs and the final checksum equals the fault-free run's exactly.

Place 0 hosts the coordinator and the router; its death stays unrecoverable,
matching Resilient X10's distinguished-place semantics (and
:meth:`~repro.chaos.ChaosSpec.validate_places` rejects kills aimed at it
before a single process is forked).
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Dict

from repro.errors import DeadPlaceError, KernelError, ResilientError
from repro.kernels.portable import program_defaults
from repro.kernels.portable.programs import (
    _digest,
    _rank_checksum,
    _TICK,
    kmeans_iteration,
)
from repro.kernels.portable.uts_program import _result as _uts_result
from repro.kernels.portable.uts_program import uts_loop
from repro.resilient.checkpoint import drive_hook
from repro.runtime.finish.pragmas import Pragma
from repro.sim.rng import RngStream

#: kernels with portable checkpoint/restore hooks (the procs counterpart of
#: :data:`repro.harness.runner.RESILIENT_KERNELS`)
RESILIENT_PORTABLE = frozenset({"kmeans", "stream", "uts"})

#: place-0 mailbox checkpoint blobs are shipped to, as (attempt, place, blob)
CKPT_BOX = "resil:ckpt"

#: restore-then-retry rounds before the run gives up with ResilientError
DEFAULT_MAX_ATTEMPTS = 8


def _dead(ctx) -> tuple:
    """Places ``ctx`` knows to be dead (empty tuple on backends without the probe)."""
    probe = getattr(ctx, "dead_places", None)
    return tuple(probe()) if callable(probe) else ()


# -- member activities (module-level: they cross the wire by reference) ---------------


def _member_epoch(ctx, body: Callable, epoch: int, tag: str, attempt: int):
    """Run one epoch body at this member and ship the checkpoint blob home.

    A peer death mid-body surfaces as :class:`DeadPlaceError` (poisoned
    receives, failed collective getters, the UTS loop's own abort check);
    the member then returns *cleanly* — its JOIN lets the tolerant wave
    finish fire, and the missing blob makes the coordinator abort the epoch.
    """
    try:
        blob = yield from drive_hook(body(ctx, epoch, tag))
    except DeadPlaceError:
        return
    ctx.send(0, CKPT_BOX, (attempt, ctx.here, blob))


def _member_restore(ctx, restore: Callable, committed_epoch: int, blob):
    """Roll this member back to the last committed epoch (``-1``: from scratch)."""
    ack = getattr(ctx, "acknowledge_deaths", None)
    if callable(ack):
        ack()  # recovery handled the deaths; lift the messaging poison
    try:
        yield from drive_hook(restore(ctx, committed_epoch, blob))
    except DeadPlaceError:
        return


# -- the coordinator (place 0's main) -------------------------------------------------


def _wave(ctx, fn: Callable, args_by_place: Dict[int, tuple], name: str):
    """One tolerant FINISH_DENSE round of ``fn`` at every live place.

    Returns True iff nobody died: every place was spawned at, and no death
    was known when the finish fired.  A kill racing the spawns is caught and
    counts as a failed wave rather than a crashed coordinator.
    """
    failed = False
    with ctx.finish(Pragma.FINISH_DENSE, name=name) as f:
        f.tolerate_death = True
        dead = set(_dead(ctx))
        for place in ctx.places():
            if place in dead:
                failed = True
                continue
            try:
                if place == ctx.here:
                    ctx.async_(fn, *args_by_place[place])
                else:
                    ctx.at_async(place, fn, *args_by_place[place])
            except DeadPlaceError:
                failed = True
    yield f.wait()
    return not failed and not _dead(ctx)


def _collect_blobs(ctx, attempt: int) -> Dict[int, Any]:
    """Drain the checkpoint mailbox; keep this attempt's blobs, drop stale ones."""
    blobs: Dict[int, Any] = {}
    while True:
        ok, item = ctx.try_recv(CKPT_BOX)
        if not ok:
            return blobs
        blob_attempt, place, blob = item
        if blob_attempt == attempt:
            blobs[place] = blob


def _heal(ctx, restore: Callable, committed_epoch: int, committed: Dict[int, Any],
          stats: dict, max_attempts: int):
    """Revive every dead place, then roll the whole world back to committed."""
    for _ in range(max_attempts):
        for place in _dead(ctx):
            ctx.revive(place)
            stats["revivals"] += 1
        ack = getattr(ctx, "acknowledge_deaths", None)
        if callable(ack):
            ack()  # place 0 must un-poison before it can spawn the wave
        args = {
            place: (restore, committed_epoch, committed.get(place))
            for place in ctx.places()
        }
        ok = yield from _wave(ctx, _member_restore, args, name="resil-restore")
        if ok:
            return
        # a kill landed mid-restore: revive again and re-run the wave
    raise ResilientError("recovery did not converge: members keep dying")


def run_resilient_epochs(ctx, epochs: int, body: Callable, restore: Callable,
                         max_attempts: int = DEFAULT_MAX_ATTEMPTS):
    """Drive ``epochs`` commit/abort rounds of ``body`` across every place.

    A generator for place 0's ``main``.  Returns ``(committed, stats)``:
    the per-place blobs of the last committed epoch and the run's recovery
    counters (``{"attempts", "commits", "aborts", "revivals"}``).
    """
    n_places = ctx.n_places
    committed: Dict[int, Any] = {}
    committed_epoch = -1
    stats = {"attempts": 0, "commits": 0, "aborts": 0, "revivals": 0}
    need_restore = True  # epoch -1: initialize every place from scratch
    attempt = 0
    failures = 0
    epoch = 0
    while epoch < epochs:
        if need_restore or _dead(ctx):
            yield from _heal(ctx, restore, committed_epoch, committed,
                             stats, max_attempts)
            need_restore = False
        attempt += 1
        stats["attempts"] += 1
        tag = f"e{epoch}a{attempt}"
        args = {place: (body, epoch, tag, attempt) for place in ctx.places()}
        ok = yield from _wave(ctx, _member_epoch, args, name=f"resil-{tag}")
        blobs = _collect_blobs(ctx, attempt)
        if ok and len(blobs) == n_places:
            committed = blobs
            committed_epoch = epoch
            stats["commits"] += 1
            epoch += 1
            failures = 0
            continue
        # a member died (or its blob was lost with it): the epoch is torn
        stats["aborts"] += 1
        failures += 1
        need_restore = True
        if failures >= max_attempts:
            raise ResilientError(
                f"epoch {epoch} aborted {failures} times: giving up"
            )
    return committed, stats


# -- kernel hooks ---------------------------------------------------------------------
#
# Each kernel declares (restore, body, finalize, epochs):
#   restore(ctx, committed_epoch, blob, p) -- (re)build this place's state in
#       ctx.store; blob None means "before any epoch": initialize from scratch.
#   body(ctx, epoch, tag, p)               -- one epoch on the state; returns
#       the checkpoint blob (a *copy*: the blob must not alias live arrays).
#   finalize(committed, p, n_places)       -- the program result, computed
#       from the last committed blobs only.
# The hook shapes match repro.resilient.checkpoint.CheckpointHooks in spirit;
# state lives in ctx.store (a genuinely private per-process heap) instead of
# a shared ResilientStore.


def _km_restore(ctx, committed_epoch: int, blob, p: dict):
    from repro.kernels.kmeans.kmeans import generate_points, initial_centroids

    points = generate_points(p["seed"], ctx.here, p["n_per_place"], p["dim"])
    if blob is None:
        # initial_centroids is a pure function of (seed, k, dim), so computing
        # it locally is bit-identical to the plain program's place-0 broadcast
        centroids = initial_centroids(p["seed"], p["k"], p["dim"])
    else:
        centroids = blob.copy()
    ctx.store["resil:km"] = (points, centroids)


def _km_body(ctx, epoch: int, tag: str, p: dict):
    points, centroids = ctx.store["resil:km"]
    centroids = yield from kmeans_iteration(ctx, points, centroids, f"km:{tag}")
    ctx.store["resil:km"] = (points, centroids)
    return centroids.copy()


def _km_finalize(committed: Dict[int, Any], p: dict, n_places: int) -> dict:
    from repro.harness.results import checksum_bytes

    centroids = committed[0]  # identical at every place after the allreduce
    return {
        "checksum": checksum_bytes(_digest(centroids)),
        "centroids": centroids,
        "k": p["k"],
    }


def _stream_restore(ctx, committed_epoch: int, blob, p: dict):
    if blob is None:
        rng = RngStream(p["seed"], f"portable/stream/{ctx.here}")
        n = p["n_per_place"]
        a = rng.uniform(0.0, 1.0, size=n)
        b = rng.uniform(0.0, 1.0, size=n)
        c = rng.uniform(0.0, 1.0, size=n)
    else:
        a, b, c = (arr.copy() for arr in blob)
    ctx.store["resil:stream"] = (a, b, c)


def _stream_body(ctx, epoch: int, tag: str, p: dict):
    from repro.kernels.stream.stream import triad

    a, b, c = ctx.store["resil:stream"]
    yield ctx.compute(seconds=_TICK)
    triad(a, b, c, p["alpha"])
    a, c = c, a  # the plain worker's ping-pong, one epoch per iteration
    ctx.store["resil:stream"] = (a, b, c)
    return (a.copy(), b.copy(), c.copy())


def _stream_finalize(committed: Dict[int, Any], p: dict, n_places: int) -> dict:
    digests = {place: _digest(*committed[place]) for place in committed}
    return {
        "checksum": _rank_checksum(digests),
        "n_total": p["n_per_place"] * n_places,
        "iterations": p["iterations"],
    }


def _uts_restore(ctx, committed_epoch: int, blob, p: dict):
    # nothing to roll back: UTS is a single retry-from-scratch epoch (the
    # node count is invariant under steal interleavings, so a re-execution
    # lands on the identical checksum)
    return None


def _uts_body(ctx, epoch: int, tag: str, p: dict):
    processed = yield from uts_loop(
        ctx, p, ctl_box=f"uts:ctl:{tag}", abort_on_death=True
    )
    return processed


def _uts_finalize(committed: Dict[int, Any], p: dict, n_places: int) -> dict:
    total = sum(committed.values())
    return _uts_result(total, per_place=dict(committed))


_HOOKS: Dict[str, tuple] = {
    # kernel -> (restore, body, finalize, epochs_from_params)
    "kmeans": (_km_restore, _km_body, _km_finalize, lambda p: p["iterations"]),
    "stream": (_stream_restore, _stream_body, _stream_finalize, lambda p: p["iterations"]),
    "uts": (_uts_restore, _uts_body, _uts_finalize, lambda p: 1),
}


def build_resilient_program(
    kernel: str,
    places: int,
    max_attempts: int = DEFAULT_MAX_ATTEMPTS,
    **params: Any,
) -> Callable:
    """The resilient ``main(ctx)`` for ``kernel``: checkpointed epochs that
    survive place kills and finish with the fault-free checksum."""
    if kernel not in RESILIENT_PORTABLE:
        raise KernelError(
            f"kernel {kernel!r} has no checkpoint/restore hooks; "
            f"--resilient supports {sorted(RESILIENT_PORTABLE)}"
        )
    p = program_defaults(kernel)
    unknown = set(params) - set(p)
    if unknown:
        raise KernelError(
            f"unknown parameter(s) {sorted(unknown)} for portable kernel "
            f"{kernel!r}; accepted: {sorted(p)}"
        )
    p.update(params)
    restore_fn, body_fn, finalize, epochs_of = _HOOKS[kernel]
    epochs = epochs_of(p)
    if epochs < 1:
        raise KernelError(
            f"resilient {kernel} needs at least one epoch (iterations >= 1), "
            f"got {epochs}"
        )
    body = functools.partial(body_fn, p=p)
    restore = functools.partial(restore_fn, p=p)

    def main(ctx):
        committed, stats = yield from run_resilient_epochs(
            ctx, epochs, body, restore, max_attempts
        )
        result = finalize(committed, p, ctx.n_places)
        # underscore prefix: recovery counters are per-run diagnostics,
        # excluded from conformance (fault schedules are backend-variant)
        result["_resilient"] = stats
        return result

    main.__name__ = f"resilient:{kernel}"
    return main


__all__ = [
    "CKPT_BOX",
    "RESILIENT_PORTABLE",
    "build_resilient_program",
    "run_resilient_epochs",
]
