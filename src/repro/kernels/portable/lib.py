"""Program-level collectives for portable APGAS programs.

Portable programs may only use the picklable ``ctx`` subset (spawns of
module-level functions, plain-data messages, ``ctx.store``), so these
collectives are built entirely out of mailbox sends — the same protocol text
then runs on the simulator's in-process transport and on the procs backend's
real sockets.

Determinism rules (the conformance suite checks results bit-for-bit):

* every mailbox name carries a per-place sequence number from ``ctx.store``,
  so repeated collectives never cross wires (all places must execute the
  same collectives in the same order — the SPMD discipline);
* messages are tagged with the sender, and receivers pull specific senders
  out of a reorder buffer, so arrival order (which differs between backends)
  never reaches program state;
* reductions combine in binomial-tree order — fixed by rank arithmetic, not
  by message timing — so floating-point results are bit-identical on every
  backend.
"""

from __future__ import annotations

from typing import Any, Callable


def _seq(ctx, tag: str) -> int:
    """Per-place sequence number for collective ``tag`` (via ``ctx.store``)."""
    key = f"_collseq:{tag}"
    n = ctx.store.get(key, 0)
    ctx.store[key] = n + 1
    return n


def recv_from(ctx, box: str, want: int):
    """Receive the message ``(want, value)`` from mailbox ``box``.

    Messages from other senders that arrive first are parked in a reorder
    buffer in ``ctx.store``.  Use as ``value = yield from recv_from(...)``.
    """
    pending = ctx.store.setdefault(f"_pend:{box}", {})
    while want not in pending:
        sender, value = yield ctx.recv(box)
        pending[sender] = value
    return pending.pop(want)


def bcast(ctx, tag: str, value: Any = None, root: int = 0):
    """Binomial-tree broadcast of ``value`` from ``root``; returns it everywhere.

    Use as ``value = yield from bcast(ctx, "tag", value)``; non-roots pass
    any placeholder.
    """
    P, me = ctx.n_places, ctx.here
    box = f"bc:{tag}:{_seq(ctx, 'bc:' + tag)}"
    rel = (me - root) % P
    if rel != 0:
        # the sender is rel with its highest bit cleared; exactly one message
        value = yield from recv_from(ctx, box, (rel ^ (1 << (rel.bit_length() - 1))))
    mask = 1
    while mask < P:
        if rel < mask and rel + mask < P:
            ctx.send((rel + mask + root) % P, box, (rel, value))
        mask <<= 1
    return value


def reduce(ctx, tag: str, value: Any, op: Callable[[Any, Any], Any], root: int = 0):
    """Binomial-tree reduction to ``root``; returns the total there, None elsewhere.

    ``op`` combines in tree order — a pure function of ranks — so the result
    is reproducible bit-for-bit.  Use as ``yield from reduce(...)``.
    """
    P, me = ctx.n_places, ctx.here
    box = f"rd:{tag}:{_seq(ctx, 'rd:' + tag)}"
    rel = (me - root) % P
    mask = 1
    while mask < P:
        if rel & mask:
            ctx.send((rel - mask + root) % P, box, (rel, value))
            return None
        if rel + mask < P:
            child = yield from recv_from(ctx, box, rel + mask)
            value = op(value, child)
        mask <<= 1
    return value


def allreduce(ctx, tag: str, value: Any, op: Callable[[Any, Any], Any]):
    """Reduce to place 0, then broadcast the total back to every place."""
    total = yield from reduce(ctx, tag + ":r", value, op)
    return (yield from bcast(ctx, tag + ":b", total))


def barrier(ctx, tag: str):
    """All places reach this point before any proceeds."""
    yield from allreduce(ctx, "bar:" + tag, 0, lambda a, b: 0)


def gather(ctx, tag: str, value: Any, root: int = 0):
    """Collect every place's ``value`` at ``root``: returns ``{place: value}``
    there (None elsewhere), independent of arrival order."""
    P, me = ctx.n_places, ctx.here
    box = f"ga:{tag}:{_seq(ctx, 'ga:' + tag)}"
    if me != root:
        ctx.send(root, box, (me, value))
        return None
    out = {me: value}
    for _ in range(P - 1):
        sender, item = yield ctx.recv(box)
        out[sender] = item
    return out
