"""Global FFT (paper Section 5.1).

The implementation alternates non-overlapping phases of computation and
communication on the array viewed as a 2D matrix: global transpose, per-row
FFTs, global transpose (with twiddle multiplication), per-row FFTs, and a
final global transpose.  Each global transpose is local data shuffling, an
All-To-All collective, and another round of local shuffling.

Index algebra (N = n1*n2, input index k = k1*n2 + k2, output j = j2*n1 + j1)::

    X[j2*n1 + j1] = sum_k2 [ (sum_k1 x[k1*n2+k2] w_n1^{j1 k1}) w_N^{j1 k2} ] w_n2^{j2 k2}

so the pipeline is: transpose (n1 x n2 -> n2 x n1), row FFTs of length n1,
twiddle by w_N^{j1 k2}, transpose, row FFTs of length n2, transpose.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.errors import KernelError
from repro.harness.calibration import DEFAULT_CALIBRATION, Calibration
from repro.harness.results import KernelResult
from repro.runtime import PlaceGroup, Team, broadcast_spawn
from repro.runtime.runtime import ApgasRuntime
from repro.sim.rng import RngStream


def fft_six_step_reference(x: np.ndarray, n1: int, n2: int) -> np.ndarray:
    """Single-node six-step FFT; must equal ``np.fft.fft(x)`` (tested)."""
    if n1 * n2 != len(x):
        raise KernelError("n1 * n2 must equal len(x)")
    N = len(x)
    B = x.reshape(n1, n2).T.copy()  # (n2, n1)
    B = np.fft.fft(B, axis=1)
    k2 = np.arange(n2)[:, None]
    j1 = np.arange(n1)[None, :]
    B *= np.exp(-2j * np.pi * (k2 * j1) / N)
    D = B.T.copy()  # (n1, n2)
    D = np.fft.fft(D, axis=1)
    return D.T.reshape(-1)  # X[j2*n1 + j1] = D[j1, j2]


def _fft_flops(rows: int, length: int) -> float:
    return 5.0 * rows * length * math.log2(max(2, length))


def run_fft(
    rt: ApgasRuntime,
    n1: int,
    n2: int,
    seed: int = 0,
    modeled_elements_per_place: Optional[int] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    group: Optional[PlaceGroup] = None,
) -> KernelResult:
    """Distributed 1D FFT of N = n1*n2 complex values over ``group``.

    ``n1`` and ``n2`` must be divisible by the group width.  The real math
    runs on the (n1, n2) problem; ``modeled_elements_per_place`` charges
    compute and wire time for the paper-scale problem instead (2 GB/place).
    """
    pg = PlaceGroup.world(rt) if group is None else group
    places = list(pg)
    rank_of = {pl: i for i, pl in enumerate(places)}
    p = len(places)
    if n1 % p or n2 % p:
        raise KernelError(f"n1={n1} and n2={n2} must be divisible by places={p}")
    N = n1 * n2
    rpp1, rpp2 = n1 // p, n2 // p
    elems = N // p if modeled_elements_per_place is None else modeled_elements_per_place
    team = Team(rt, places)
    rng = RngStream(seed, "fft/input")
    x = (rng.uniform(-1, 1, size=N) + 1j * rng.uniform(-1, 1, size=N)).astype(np.complex128)
    outputs = {}

    # modeled sizes: each transpose moves all local data, split evenly by pair
    wire_per_pair = max(1, (16 * elems) // p)
    modeled_len = max(4, elems * p)  # modeled total transform length
    fft_charge = 0.5 * 5.0 * elems * math.log2(modeled_len)  # per FFT phase

    def transpose(ctx, local, rows_out, cols_out):
        """Global transpose of the distributed matrix (local shuffle +
        All-To-All + local shuffle)."""
        blocks = [np.ascontiguousarray(local[:, q * rows_out : (q + 1) * rows_out]) for q in range(p)]
        received = yield team.alltoall(ctx, blocks, nbytes_per_pair=wire_per_pair)
        out = np.empty((rows_out, cols_out), dtype=np.complex128)
        rows_in = local.shape[0]
        for q in range(p):
            out[:, q * rows_in : (q + 1) * rows_in] = received[q].T
        return out

    def body(ctx):
        place = rank_of[ctx.here]
        local = x.reshape(n1, n2)[place * rpp1 : (place + 1) * rpp1].copy()
        # phase 1: global transpose -> rows are original columns
        local = yield from transpose(ctx, local, rpp2, n1)
        # phase 2: per-row FFTs of length n1
        local = np.fft.fft(local, axis=1)
        yield ctx.compute(flops=fft_charge, flop_rate=calibration.fft_flops)
        # phase 3: twiddle factors w_N^{j1 k2}
        k2 = (place * rpp2 + np.arange(rpp2))[:, None]
        j1 = np.arange(n1)[None, :]
        local = local * np.exp(-2j * np.pi * (k2 * j1) / N)
        # phase 4: global transpose back
        local = yield from transpose(ctx, local, rpp1, n2)
        # phase 5: per-row FFTs of length n2
        local = np.fft.fft(local, axis=1)
        yield ctx.compute(flops=fft_charge, flop_rate=calibration.fft_flops)
        # phase 6: final global transpose into natural output order
        local = yield from transpose(ctx, local, rpp2, n1)
        outputs[place] = local.reshape(-1)

    def main(ctx):
        yield from broadcast_spawn(ctx, pg, body)

    rt.run(main)
    result = np.concatenate([outputs[q] for q in range(p)])
    expected = np.fft.fft(x)
    verified = bool(np.allclose(result, expected, atol=1e-6 * max(1, np.abs(expected).max())))
    total_flops = 5.0 * (elems * p) * math.log2(modeled_len)
    rate = total_flops / rt.now
    return KernelResult(
        kernel="fft",
        places=p,
        sim_time=rt.now,
        value=rate,
        unit="flop/s",
        per_core=rate / p,
        verified=verified,
        extra={"n1": n1, "n2": n2, "max_err": float(np.abs(result - expected).max())},
    )
