"""Global FFT: 1D discrete Fourier transform, transpose algorithm."""

from repro.kernels.fft.fft import fft_six_step_reference, run_fft

__all__ = ["fft_six_step_reference", "run_fft"]
