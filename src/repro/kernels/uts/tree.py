"""Geometric UTS trees as interval work queues.

The paper's compact representation: instead of expanded lists of nodes, a
place's pending work is a list of *intervals of siblings* — (parent state,
depth, lo, hi) meaning children ``lo..hi-1`` of that parent are not yet
visited.  Processing is depth-first (top of the stack), so the list stays
short.  To counteract the bias introduced by the depth cut-off, a thief steals
fragments of *every* interval (the refined mode); the original mode splits a
single interval.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import KernelError
from repro.glb.bag import TaskBag
from repro.kernels.uts.rng import make_rng


@dataclass(frozen=True)
class UtsParams:
    """Tree shape: fixed geometric law (paper: b0=4, r=19, d=14..22)."""

    b0: float = 4.0
    depth: int = 10
    seed: int = 19
    rng_mode: str = "splitmix"

    def __post_init__(self) -> None:
        if self.b0 <= 1.0:
            raise KernelError("geometric branching factor b0 must exceed 1")
        if self.depth < 1:
            raise KernelError("depth cut-off must be at least 1")

    @property
    def q(self) -> float:
        """Geometric parameter: P(X >= k) = q^k, E[X] = b0."""
        return self.b0 / (self.b0 + 1.0)


class UtsBag(TaskBag):
    """A place's pending sibling intervals."""

    def __init__(
        self,
        params: UtsParams,
        intervals: Optional[list] = None,
        bootstrap_nodes: int = 0,
        steal_all_intervals: bool = True,
    ) -> None:
        self.params = params
        self.rng = make_rng(params.rng_mode)
        self.intervals: list = intervals if intervals is not None else []
        self._bootstrap = bootstrap_nodes
        self.steal_all_intervals = steal_all_intervals

    @classmethod
    def root(cls, params: UtsParams, steal_all_intervals: bool = True) -> "UtsBag":
        """The whole tree: the root node plus the interval of its children."""
        rng = make_rng(params.rng_mode)
        state = rng.root_state(params.seed)
        bag = cls(params, bootstrap_nodes=1, steal_all_intervals=steal_all_intervals)
        states = [state] if params.rng_mode == "sha1" else _as_array(state)
        n = int(rng.num_children(states, params.q)[0])
        if n > 0:
            bag.intervals.append((state, 0, 0, n))
        return bag

    # -- TaskBag protocol -----------------------------------------------------------

    def is_empty(self) -> bool:
        return not self.intervals and self._bootstrap == 0

    def process(self, max_items: int) -> int:
        """Visit up to ``max_items`` nodes depth-first; returns nodes visited."""
        processed = self._bootstrap
        self._bootstrap = 0
        params, rng, q = self.params, self.rng, self.params.q
        while processed < max_items and self.intervals:
            state, depth, lo, hi = self.intervals[-1]
            take = min(hi - lo, max_items - processed)
            if lo + take >= hi:
                self.intervals.pop()
            else:
                self.intervals[-1] = (state, depth, lo + take, hi)
            if depth + 1 < params.depth:  # the children may have children;
                # below the cut-off visiting a node is just counting it, so
                # the child states (a majority of the tree) are never derived
                children = rng.child_states(state, lo, lo + take)
                counts = rng.num_children(children, q)
                push = self.intervals.append
                for st, k in zip(children, counts.tolist()):
                    if k > 0:
                        push((st, depth + 1, 0, k))
            processed += take
        return processed

    def split(self) -> Optional["UtsBag"]:
        if self.steal_all_intervals:
            return self._split_every_interval()
        return self._split_one_interval()

    def _split_every_interval(self) -> Optional["UtsBag"]:
        """The refined policy: a fragment of every interval (all tree depths).

        Intervals with two or more remaining siblings are halved.  Singleton
        intervals — typically the *shallow* ones holding the largest subtrees,
        since a DFS parent's sibling range drains to one quickly — alternate
        between thief and victim, so big subtrees change hands instead of
        being hoarded by the victim (the paper's "steal fragments of every
        interval" fix for shallow trees).
        """
        loot = []
        kept = []
        give_singleton = True
        for st, dep, lo, hi in self.intervals:
            span = hi - lo
            if span >= 2:
                take = span // 2
                loot.append((st, dep, lo, lo + take))
                kept.append((st, dep, lo + take, hi))
            elif span == 1 and give_singleton:
                loot.append((st, dep, lo, hi))
                give_singleton = False
            else:
                kept.append((st, dep, lo, hi))
                if span == 1:
                    give_singleton = True
        if not loot:
            return None
        self.intervals = kept
        return UtsBag(self.params, loot, steal_all_intervals=True)

    def _split_one_interval(self) -> Optional["UtsBag"]:
        """The original policy: split the single bottom-most splittable interval."""
        for idx, (st, dep, lo, hi) in enumerate(self.intervals):
            take = (hi - lo) // 2
            if take > 0:
                self.intervals[idx] = (st, dep, lo + take, hi)
                return UtsBag(self.params, [(st, dep, lo, lo + take)], steal_all_intervals=False)
        return None

    def merge(self, other: "UtsBag") -> None:
        # stolen intervals go to the bottom of the stack: the thief keeps
        # working depth-first on its own subtrees first
        self.intervals[:0] = other.intervals
        self._bootstrap += other._bootstrap

    @property
    def serialized_nbytes(self) -> int:
        state_bytes = 20 if self.params.rng_mode == "sha1" else 8
        return 16 + (state_bytes + 16) * len(self.intervals)

    @property
    def pending_lower_bound(self) -> int:
        """Nodes directly represented (children of pushed intervals)."""
        return sum(hi - lo for _, _, lo, hi in self.intervals) + self._bootstrap


def _as_array(state):
    import numpy as np

    return np.asarray([state], dtype=np.uint64)
