"""Distributed UTS on top of GLB (paper Section 6).

Every worker maintains a list of pending sibling intervals; idle workers steal
— random attempts first, lifelines after — and the root finish (FINISH_DENSE
in the refined configuration) detects global termination.  The traversal rate
per place is calibrated to the paper's 10.929 M nodes/s.
"""

from __future__ import annotations

from typing import Optional

from repro.glb import Glb, GlbConfig, GlbStats
from repro.harness.calibration import DEFAULT_CALIBRATION, Calibration
from repro.harness.results import KernelResult, checksum_bytes
from repro.kernels.uts.tree import UtsBag, UtsParams
from repro.resilient import GlbResilience, ResilientStore
from repro.runtime.broadcast import PlaceGroup
from repro.runtime.runtime import ApgasRuntime


def build_uts(
    rt: ApgasRuntime,
    depth: int,
    b0: float = 4.0,
    seed: int = 19,
    rng_mode: str = "splitmix",
    glb_config: Optional[GlbConfig] = None,
    steal_all_intervals: bool = True,
    time_dilation: float = 1.0,
    calibration: Calibration = DEFAULT_CALIBRATION,
    resilient: bool = False,
    respawn_delay: float = 2e-3,
    group: Optional[PlaceGroup] = None,
):
    """Build the UTS program over ``group``; returns ``(main, finalize)``.

    The balancing fabric (workers, victim sets, lifelines) lives strictly
    inside the group; the node count depends only on the tree parameters.
    """
    params = UtsParams(b0=b0, depth=depth, seed=seed, rng_mode=rng_mode)
    config = glb_config or GlbConfig(chunk_items=4096)
    if time_dilation < 1.0:
        raise ValueError("time_dilation must be >= 1")
    effective_rate = calibration.uts_nodes_per_sec / time_dilation
    res = None
    if resilient:
        # bag fragments are snapshotted at every steal boundary; a killed
        # place is respawned and re-executes only its uncovered chunk
        res = GlbResilience(
            ResilientStore(rt, name="glb"), respawn_delay=respawn_delay
        )
    glb = Glb(
        rt,
        root_bag=UtsBag.root(params, steal_all_intervals=steal_all_intervals),
        make_empty_bag=lambda: UtsBag(params, steal_all_intervals=steal_all_intervals),
        process_rate=effective_rate,
        config=config,
        resilient=res,
        group=group,
    )

    def finalize(elapsed: Optional[float] = None) -> KernelResult:
        t = rt.now if elapsed is None else elapsed
        stats: GlbStats = glb.stats()
        rate = stats.total_processed / t * time_dilation if t > 0 else 0.0
        return KernelResult(
            kernel="uts",
            places=stats.places,
            sim_time=t,
            value=rate,
            unit="nodes/s",
            per_core=rate / stats.places,
            verified=None,  # cross-checked against sequential_count in tests
            extra={
                "nodes": stats.total_processed,
                "checksum": checksum_bytes(str(stats.total_processed).encode()),
                "glb": stats,
                "efficiency": stats.efficiency(effective_rate),
                "params": params,
                "time_dilation": time_dilation,
            },
        )

    return glb.main, finalize


def run_uts(
    rt: ApgasRuntime,
    depth: int,
    b0: float = 4.0,
    seed: int = 19,
    rng_mode: str = "splitmix",
    glb_config: Optional[GlbConfig] = None,
    steal_all_intervals: bool = True,
    time_dilation: float = 1.0,
    calibration: Calibration = DEFAULT_CALIBRATION,
    resilient: bool = False,
    respawn_delay: float = 2e-3,
    group: Optional[PlaceGroup] = None,
) -> KernelResult:
    """Traverse one geometric tree across the places of ``group``.

    Returns nodes/s aggregate and per core; ``extra`` carries the GLB
    statistics and the exact node count.

    ``time_dilation``: the paper's runs last 90-200 s — around 10^8 nodes per
    place — which a Python tree expansion cannot reach wall-clock.  With
    dilation k, each node is charged k times its calibrated cost, so a tree
    k times smaller reproduces the paper's work-to-latency ratio exactly (the
    steal/lifeline event structure is unchanged, only stretched).  Reported
    rates are scaled back by k.  Used by the at-scale benchmarks and
    documented in EXPERIMENTS.md.
    """
    main, finalize = build_uts(
        rt,
        depth,
        b0=b0,
        seed=seed,
        rng_mode=rng_mode,
        glb_config=glb_config,
        steal_all_intervals=steal_all_intervals,
        time_dilation=time_dilation,
        calibration=calibration,
        resilient=resilient,
        respawn_delay=respawn_delay,
        group=group,
    )
    rt.run(main)
    return finalize()
