"""Unbalanced Tree Search on geometric trees (paper Section 6)."""

from repro.kernels.uts.rng import Sha1Rng, SplitMixRng, make_rng
from repro.kernels.uts.tree import UtsBag, UtsParams
from repro.kernels.uts.sequential import sequential_count
from repro.kernels.uts.uts import build_uts, run_uts

__all__ = [
    "Sha1Rng",
    "SplitMixRng",
    "make_rng",
    "UtsBag",
    "UtsParams",
    "sequential_count",
    "build_uts",
    "run_uts",
]
