"""Splittable random number generators for UTS tree generation.

The original UTS derives each node's state by SHA-1 hashing its parent's
state and its child index; the node's branching factor is a geometric draw
from that state.  :class:`Sha1Rng` is that faithful construction.
:class:`SplitMixRng` is the documented substitution for large trees: a
SplitMix64-style counter hash, fully vectorized with NumPy — a different hash
function but the same splittable structure and the same geometric branching
statistics (validated against the SHA-1 mode by tests).

The geometric law: with branching parameter ``b0``, a node at depth below the
cut-off has ``floor(log(u) / log(q))`` children where ``q = b0/(b0+1)`` and
``u`` is the node's uniform draw — expected value ~= ``b0``, long right tail
(the source of the imbalance), expected tree size ~= ``b0**d``.
"""

from __future__ import annotations

import hashlib
import math
import struct
from typing import Protocol, Union

import numpy as np

_MASK = np.uint64(0xFFFFFFFFFFFFFFFF)
_GAMMA = np.uint64(0x9E3779B97F4A7C15)
_MIX1 = np.uint64(0xBF58476D1CE4E5B9)
_MIX2 = np.uint64(0x94D049BB133111EB)
# plain-int twins for the scalar fast path (same modular arithmetic)
_MASK_I = 0xFFFFFFFFFFFFFFFF
_GAMMA_I = 0x9E3779B97F4A7C15
_MIX1_I = 0xBF58476D1CE4E5B9
_MIX2_I = 0x94D049BB133111EB


class SplitRng(Protocol):
    """What the UTS tree expansion needs from a splittable RNG."""

    def root_state(self, seed: int): ...

    def child_states(self, parent_state, lo: int, hi: int): ...

    def num_children(self, states, q: float) -> np.ndarray: ...


class SplitMixRng:
    """Vectorized SplitMix64-style splittable RNG: states are uint64."""

    name = "splitmix"

    def root_state(self, seed: int) -> np.uint64:
        return _mix(np.uint64(seed & 0xFFFFFFFFFFFFFFFF) + _GAMMA)

    def child_states(self, parent_state: np.uint64, lo: int, hi: int) -> np.ndarray:
        n = hi - lo
        if n <= 32:
            # small batches (the DFS common case) in exact modular Python-int
            # arithmetic: identical uint64 values, none of the per-call numpy
            # overhead (arange + errstate + three ufunc dispatches)
            p = int(parent_state)
            out = np.empty(n, dtype=np.uint64)
            for j in range(n):
                z = (p + (lo + 1 + j) * _GAMMA_I) & _MASK_I
                z = ((z ^ (z >> 30)) * _MIX1_I) & _MASK_I
                z = ((z ^ (z >> 27)) * _MIX2_I) & _MASK_I
                out[j] = z ^ (z >> 31)
            return out
        indices = np.arange(lo + 1, hi + 1, dtype=np.uint64)
        return _mix(np.uint64(parent_state) + indices * _GAMMA)

    def num_children(self, states: np.ndarray, q: float) -> np.ndarray:
        u = _to_unit(states)
        return np.floor(np.log(u) / math.log(q)).astype(np.int64)


class Sha1Rng:
    """The faithful UTS construction: 20-byte SHA-1 states."""

    name = "sha1"

    def root_state(self, seed: int) -> bytes:
        return hashlib.sha1(struct.pack(">q", seed)).digest()

    def child_states(self, parent_state: bytes, lo: int, hi: int) -> list[bytes]:
        return [
            hashlib.sha1(parent_state + struct.pack(">i", i)).digest()
            for i in range(lo, hi)
        ]

    def num_children(self, states, q: float) -> np.ndarray:
        out = np.empty(len(states), dtype=np.int64)
        for idx, digest in enumerate(states):
            word = struct.unpack(">Q", digest[:8])[0]
            u = max(word, 1) / 2.0**64
            out[idx] = int(math.floor(math.log(u) / math.log(q)))
        return out


def make_rng(mode: str) -> Union[SplitMixRng, Sha1Rng]:
    if mode == "splitmix":
        return SplitMixRng()
    if mode == "sha1":
        return Sha1Rng()
    raise ValueError(f"unknown UTS rng mode {mode!r}; use 'splitmix' or 'sha1'")


def _mix(z: np.ndarray) -> np.ndarray:
    with np.errstate(over="ignore"):  # modular uint64 arithmetic is intended
        z = (z ^ (z >> np.uint64(30))) * _MIX1
        z = (z ^ (z >> np.uint64(27))) * _MIX2
        return z ^ (z >> np.uint64(31))


def _to_unit(states: np.ndarray) -> np.ndarray:
    """Map uint64 states to (0, 1], avoiding log(0)."""
    u = (np.asarray(states, dtype=np.uint64) >> np.uint64(11)).astype(np.float64)
    u = u * (1.0 / 2**53)
    return np.maximum(u, 1.0 / 2**53)
