"""Independent sequential UTS traversal — the oracle for the interval queue.

Node-at-a-time explicit-stack traversal written directly against the
splittable RNG, sharing no code with :class:`~repro.kernels.uts.tree.UtsBag`.
"""

from __future__ import annotations

from repro.kernels.uts.rng import make_rng
from repro.kernels.uts.tree import UtsParams


def sequential_count(params: UtsParams, max_nodes: int = 50_000_000) -> int:
    """Total number of nodes in the tree (raises if it exceeds ``max_nodes``)."""
    rng = make_rng(params.rng_mode)
    q = params.q
    root = rng.root_state(params.seed)
    count = 1
    stack = [(root, 0)]  # (node state, node depth)
    while stack:
        state, depth = stack.pop()
        if depth >= params.depth:
            continue
        states = rng.child_states(state, 0, _branching(rng, state, q))
        n = len(states)
        count += n
        if count > max_nodes:
            raise RuntimeError(f"tree exceeds {max_nodes} nodes; lower the depth")
        for child in _iterate(states):
            stack.append((child, depth + 1))
    return count


def _branching(rng, state, q: float) -> int:
    import numpy as np

    states = [state] if isinstance(state, bytes) else np.asarray([state], dtype=np.uint64)
    return int(rng.num_children(states, q)[0])


def _iterate(states):
    return list(states)
