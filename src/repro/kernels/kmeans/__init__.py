"""K-Means clustering (Lloyd's algorithm) with All-Reduce refinement."""

from repro.kernels.kmeans.kmeans import (
    assign_and_accumulate,
    build_kmeans,
    generate_points,
    initial_centroids,
    kmeans_reference,
    run_kmeans,
)

__all__ = [
    "assign_and_accumulate",
    "build_kmeans",
    "generate_points",
    "initial_centroids",
    "kmeans_reference",
    "run_kmeans",
]
