"""K-Means: Lloyd's algorithm (paper Section 7).

Points are partitioned across places.  In parallel at each place we classify
the points by nearest centroid and compute the average positions of the
per-place points in each cluster; two All-Reduce collectives then compute the
global sums and counts, providing updated centroids for the next iteration.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import KernelError
from repro.harness.calibration import DEFAULT_CALIBRATION, Calibration
from repro.harness.results import KernelResult
from repro.runtime import PlaceGroup, Team, broadcast_spawn
from repro.runtime.runtime import ApgasRuntime
from repro.sim.rng import RngStream

#: flops per point-centroid pair in the classify step (sub, mul, add per dim)
FLOPS_PER_PAIR_PER_DIM = 3


def generate_points(seed: int, place: int, n: int, dim: int) -> np.ndarray:
    """The point block owned by ``place`` (deterministic in (seed, place))."""
    rng = RngStream(seed, f"kmeans/points/{place}")
    return rng.uniform(0.0, 1.0, size=(n, dim))


def initial_centroids(seed: int, k: int, dim: int) -> np.ndarray:
    """Arbitrary initial centroids, identical at every place."""
    rng = RngStream(seed, "kmeans/centroids")
    return rng.uniform(0.0, 1.0, size=(k, dim))


def assign_and_accumulate(points: np.ndarray, centroids: np.ndarray):
    """Classify points by nearest centroid; returns (sums k x d, counts k)."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2; the x^2 term is constant per point
    cross = points @ centroids.T
    c_sq = np.einsum("kd,kd->k", centroids, centroids)
    labels = np.argmin(c_sq[None, :] - 2.0 * cross, axis=1)
    k, d = centroids.shape
    sums = np.zeros((k, d))
    np.add.at(sums, labels, points)
    counts = np.bincount(labels, minlength=k).astype(np.float64)
    return sums, counts


def update_centroids(centroids: np.ndarray, sums: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """New centroids = cluster means; empty clusters keep their centroid."""
    out = centroids.copy()
    mask = counts > 0
    out[mask] = sums[mask] / counts[mask, None]
    return out


def kmeans_reference(points: np.ndarray, centroids: np.ndarray, iterations: int) -> np.ndarray:
    """Single-node Lloyd's, used as the correctness oracle."""
    c = centroids.copy()
    for _ in range(iterations):
        sums, counts = assign_and_accumulate(points, c)
        c = update_centroids(c, sums, counts)
    return c


def run_kmeans(
    rt: ApgasRuntime,
    points_per_place: int,
    k: int = 4096,
    dim: int = 12,
    iterations: int = 5,
    seed: int = 0,
    actual_points: Optional[int] = None,
    actual_k: Optional[int] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
) -> KernelResult:
    """Weak-scaling distributed K-Means; paper parameters are the defaults.

    ``actual_points`` / ``actual_k`` bound the real math at scale while time
    is charged for the modeled ``points_per_place`` x ``k`` problem.
    """
    if min(points_per_place, k, dim, iterations) < 1:
        raise KernelError("kmeans parameters must be positive")
    real_n = min(points_per_place, 4096) if actual_points is None else actual_points
    real_k = min(k, 64) if actual_k is None else actual_k
    team = Team(rt, list(range(rt.n_places)))
    final = {}
    flops_per_iter = points_per_place * k * dim * FLOPS_PER_PAIR_PER_DIM

    def body(ctx):
        points = generate_points(seed, ctx.here, real_n, dim)
        centroids = initial_centroids(seed, real_k, dim)
        for _ in range(iterations):
            sums, counts = assign_and_accumulate(points, centroids)
            yield ctx.compute(flops=flops_per_iter, flop_rate=calibration.kmeans_flops)
            # two All-Reduce collectives compute the global averages
            global_sums = yield team.allreduce(ctx, sums)
            global_counts = yield team.allreduce(ctx, counts)
            centroids = update_centroids(centroids, global_sums, global_counts)
        final[ctx.here] = centroids

    def main(ctx):
        yield from broadcast_spawn(ctx, PlaceGroup.world(rt), body)

    rt.run(main)
    centroids = final[0]
    agreement = all(np.array_equal(final[p], centroids) for p in final)
    return KernelResult(
        kernel="kmeans",
        places=rt.n_places,
        sim_time=rt.now,
        value=rt.now,
        unit="s",
        per_core=rt.now,  # the paper reports run time; efficiency is time-based
        verified=agreement,
        extra={"centroids": centroids, "iterations": iterations},
    )
