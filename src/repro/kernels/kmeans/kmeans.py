"""K-Means: Lloyd's algorithm (paper Section 7).

Points are partitioned across places.  In parallel at each place we classify
the points by nearest centroid and compute the average positions of the
per-place points in each cluster; two All-Reduce collectives then compute the
global sums and counts, providing updated centroids for the next iteration.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import KernelError
from repro.harness.calibration import DEFAULT_CALIBRATION, Calibration
from repro.harness.results import KernelResult, checksum_bytes
from repro.resilient import CheckpointHooks, EpochCoordinator, ResilientStore
from repro.runtime import PlaceGroup, Team, broadcast_spawn
from repro.runtime.runtime import ApgasRuntime
from repro.sim.rng import RngStream

#: flops per point-centroid pair in the classify step (sub, mul, add per dim)
FLOPS_PER_PAIR_PER_DIM = 3


def generate_points(seed: int, place: int, n: int, dim: int) -> np.ndarray:
    """The point block owned by ``place`` (deterministic in (seed, place))."""
    rng = RngStream(seed, f"kmeans/points/{place}")
    return rng.uniform(0.0, 1.0, size=(n, dim))


def initial_centroids(seed: int, k: int, dim: int) -> np.ndarray:
    """Arbitrary initial centroids, identical at every place."""
    rng = RngStream(seed, "kmeans/centroids")
    return rng.uniform(0.0, 1.0, size=(k, dim))


def assign_and_accumulate(points: np.ndarray, centroids: np.ndarray):
    """Classify points by nearest centroid; returns (sums k x d, counts k)."""
    # ||x - c||^2 = ||x||^2 - 2 x.c + ||c||^2; the x^2 term is constant per point
    cross = points @ centroids.T
    c_sq = np.einsum("kd,kd->k", centroids, centroids)
    labels = np.argmin(c_sq[None, :] - 2.0 * cross, axis=1)
    k, d = centroids.shape
    sums = np.zeros((k, d))
    np.add.at(sums, labels, points)
    counts = np.bincount(labels, minlength=k).astype(np.float64)
    return sums, counts


def update_centroids(centroids: np.ndarray, sums: np.ndarray, counts: np.ndarray) -> np.ndarray:
    """New centroids = cluster means; empty clusters keep their centroid."""
    out = centroids.copy()
    mask = counts > 0
    out[mask] = sums[mask] / counts[mask, None]
    return out


def kmeans_reference(points: np.ndarray, centroids: np.ndarray, iterations: int) -> np.ndarray:
    """Single-node Lloyd's, used as the correctness oracle."""
    c = centroids.copy()
    for _ in range(iterations):
        sums, counts = assign_and_accumulate(points, c)
        c = update_centroids(c, sums, counts)
    return c


def run_kmeans(
    rt: ApgasRuntime,
    points_per_place: int,
    k: int = 4096,
    dim: int = 12,
    iterations: int = 5,
    seed: int = 0,
    actual_points: Optional[int] = None,
    actual_k: Optional[int] = None,
    calibration: Calibration = DEFAULT_CALIBRATION,
    resilient: bool = False,
    respawn_delay: float = 2e-3,
) -> KernelResult:
    """Weak-scaling distributed K-Means; paper parameters are the defaults.

    ``actual_points`` / ``actual_k`` bound the real math at scale while time
    is charged for the modeled ``points_per_place`` x ``k`` problem.

    With ``resilient`` every iteration is a checkpoint epoch: each place's
    point partition (epoch 0) and rank 0's centroids (every epoch) go to the
    replicated store, so a chaos kill costs one re-executed iteration and the
    final centroids are bit-identical to the fault-free run.
    """
    if min(points_per_place, k, dim, iterations) < 1:
        raise KernelError("kmeans parameters must be positive")
    real_n = min(points_per_place, 4096) if actual_points is None else actual_points
    real_k = min(k, 64) if actual_k is None else actual_k
    team = Team(rt, list(range(rt.n_places)))
    final = {}
    flops_per_iter = points_per_place * k * dim * FLOPS_PER_PAIR_PER_DIM

    def iterate(ctx, points, centroids):
        sums, counts = assign_and_accumulate(points, centroids)
        yield ctx.compute(flops=flops_per_iter, flop_rate=calibration.kmeans_flops)
        # two All-Reduce collectives compute the global averages
        global_sums = yield team.allreduce(ctx, sums)
        global_counts = yield team.allreduce(ctx, counts)
        return update_centroids(centroids, global_sums, global_counts)

    if resilient:
        run_resilient = _make_resilient_main(
            rt, iterate, real_n=real_n, real_k=real_k, dim=dim, seed=seed,
            iterations=iterations, points_per_place=points_per_place, k=k,
            final=final, respawn_delay=respawn_delay,
        )
        rt.run(run_resilient)
    else:

        def body(ctx):
            points = generate_points(seed, ctx.here, real_n, dim)
            centroids = initial_centroids(seed, real_k, dim)
            for _ in range(iterations):
                centroids = yield from iterate(ctx, points, centroids)
            final[ctx.here] = centroids

        def main(ctx):
            yield from broadcast_spawn(ctx, PlaceGroup.world(rt), body)

        rt.run(main)
    centroids = final[0]
    agreement = all(np.array_equal(final[p], centroids) for p in final)
    return KernelResult(
        kernel="kmeans",
        places=rt.n_places,
        sim_time=rt.now,
        value=rt.now,
        unit="s",
        per_core=rt.now,  # the paper reports run time; efficiency is time-based
        verified=agreement,
        extra={
            "centroids": centroids,
            "iterations": iterations,
            "checksum": checksum_bytes(np.ascontiguousarray(centroids).tobytes()),
        },
    )


def _make_resilient_main(
    rt, iterate, *, real_n, real_k, dim, seed, iterations,
    points_per_place, k, final, respawn_delay,
):
    """Build the epoch-coordinated main for the resilient K-Means variant."""
    store = ResilientStore(rt, name="kmeans")
    part: dict[int, dict] = {}  # the simulated PGAS-local state per place
    points_nbytes = points_per_place * dim * 8  # modeled partition size
    centroids_nbytes = k * dim * 8

    def checkpoint(ctx, epoch, st):
        here = ctx.here
        if epoch == 0:
            # the input partition is written once; restores quorum-read it
            yield from st.put(
                ctx, f"points/{here}", part[here]["points"], epoch,
                nbytes=points_nbytes,
            )
        if here == 0:
            yield from st.put(
                ctx, "centroids", part[here]["centroids"], epoch,
                nbytes=centroids_nbytes,
            )

    def restore(ctx, epoch, st):
        here = ctx.here
        if epoch < 0:
            # before any commit: (re)initialize from the deterministic seeds
            part[here] = {
                "points": generate_points(seed, here, real_n, dim),
                "centroids": initial_centroids(seed, real_k, dim),
            }
            return
        state = part.get(here)
        if state is None or "points" not in state:
            _version, points = yield from st.get(ctx, f"points/{here}")
            if points is None:  # written at epoch 0, so always committed here
                points = generate_points(seed, here, real_n, dim)
            part[here] = state = {"points": points}
        _version, centroids = yield from st.get(ctx, "centroids")
        state["centroids"] = centroids

    hooks = CheckpointHooks(checkpoint=checkpoint, restore=restore)
    coordinator = EpochCoordinator(rt, store, hooks, respawn_delay=respawn_delay)

    def epoch_body(ctx, epoch):
        state = part[ctx.here]
        state["centroids"] = yield from iterate(
            ctx, state["points"], state["centroids"]
        )

    def main(ctx):
        yield from coordinator.run(ctx, iterations, epoch_body)
        for place, state in part.items():
            final[place] = state["centroids"]

    return main
