"""The eight application kernels of the paper's evaluation.

HPC Class 2 Challenge benchmarks (Section 5): :mod:`~repro.kernels.hpl`,
:mod:`~repro.kernels.fft`, :mod:`~repro.kernels.randomaccess`,
:mod:`~repro.kernels.stream`.  Unbalanced Tree Search (Section 6):
:mod:`~repro.kernels.uts`.  Other benchmarks (Section 7):
:mod:`~repro.kernels.kmeans`, :mod:`~repro.kernels.smithwaterman`,
:mod:`~repro.kernels.bc`.

Every kernel follows the same convention: a pure local-math core validated
against an independent reference (SciPy/NumPy/NetworkX/plain DP), and a
``run_*`` driver that executes the distributed algorithm on an
:class:`~repro.runtime.ApgasRuntime` — real protocol traffic, real (scaled)
data, calibrated compute charges — returning a
:class:`~repro.harness.results.KernelResult`.
"""
