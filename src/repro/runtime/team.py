"""Teams: X10's ``x10.util.Team`` — collectives over groups of places.

Team operations offer capabilities similar to HPC collectives — Barrier,
All-Reduce, Broadcast, All-To-All, etc.  On networks supporting these
multi-way patterns in hardware (including simple calculations on the data),
the team operations map directly to the hardware implementations; otherwise
the emulation layer kicks in (paper Section 3.3).

Usage — every member activity makes the same sequence of calls::

    team = Team(rt, members=list(range(n)))

    def member_body(ctx):
        total = yield team.allreduce(ctx, local_value)
        yield team.barrier(ctx)

Data flow (the numpy reduction) is computed exactly; time flows through
:class:`repro.xrt.collectives.Collectives`.
"""

from __future__ import annotations

from typing import Any, Callable, Optional, Sequence

import numpy as np

from repro.errors import ApgasError, DeadPlaceError
from repro.sim.events import SimEvent
from repro.xrt import estimate_nbytes
from repro.xrt.collectives import CollectiveOp


class _Slot:
    """One in-progress collective: members rendezvous here."""

    __slots__ = ("op", "values", "arrived", "events", "meta")

    def __init__(self, op: CollectiveOp, n: int) -> None:
        self.op = op
        self.values: list[Any] = [None] * n
        self.arrived = 0
        self.events: list[SimEvent] = [SimEvent(name=f"team.{op.value}") for _ in range(n)]
        self.meta: dict = {}


class Team:
    """An ordered group of places executing collectives together."""

    def __init__(self, rt, members: Sequence[int]) -> None:
        if len(set(members)) != len(members):
            raise ApgasError("team members must be distinct places")
        if not members:
            raise ApgasError("team needs at least one member")
        self.rt = rt
        self.members = list(members)
        self._rank = {p: i for i, p in enumerate(self.members)}
        self._call_index = {p: 0 for p in self.members}
        self._slots: dict[int, _Slot] = {}
        #: a member died: every current and future collective fails with this
        self._failed: Optional[DeadPlaceError] = None
        if getattr(rt, "chaos", None) is not None:
            rt.chaos.subscribe_death(self._on_place_death)
            rt.chaos.subscribe_revive(self._on_place_revive)

    @property
    def size(self) -> int:
        return len(self.members)

    def rank(self, place: int) -> int:
        try:
            return self._rank[place]
        except KeyError:
            raise ApgasError(f"place {place} is not a member of this team") from None

    def split(self, color_of) -> dict:
        """X10's ``Team.split``: partition into sub-teams by color.

        ``color_of`` maps each member place to a hashable color; returns
        ``{color: Team}`` with members in this team's rank order.  HPL's
        process-row and process-column teams are the canonical use::

            rows = world.split(lambda p: grid.coords_of(p)[0])
        """
        groups: dict = {}
        for place in self.members:
            groups.setdefault(color_of(place), []).append(place)
        return {color: Team(self.rt, members) for color, members in groups.items()}

    # -- the collective operations (each returns an event to yield) -----------------

    def barrier(self, ctx) -> SimEvent:
        return self._collective(ctx, CollectiveOp.BARRIER, None, nbytes=8)

    def broadcast(
        self, ctx, value: Any = None, root: int = 0, nbytes: Optional[int] = None
    ) -> SimEvent:
        """Every member receives the root's ``value``.

        ``nbytes`` overrides the modeled payload size.
        """

        def finalize(slot):
            return [slot.values[self._root_rank(slot)]] * self.size

        return self._collective(
            ctx, CollectiveOp.BROADCAST, value, root=root, finalize=finalize, nbytes=nbytes
        )

    def reduce(
        self, ctx, value: Any, root: int = 0, op: Callable = np.add, nbytes: Optional[int] = None
    ) -> SimEvent:
        """Root receives the reduction; others receive None."""

        def finalize(slot):
            total = _reduce_values(slot.values, op)
            return [total if i == self._root_rank(slot) else None for i in range(self.size)]

        return self._collective(
            ctx, CollectiveOp.REDUCE, value, root=root, finalize=finalize, nbytes=nbytes
        )

    def allreduce(
        self, ctx, value: Any, op: Callable = np.add, nbytes: Optional[int] = None
    ) -> SimEvent:
        """Every member receives the reduction of all members' values.

        ``nbytes`` overrides the modeled payload size (used when the real
        value is a scaled-down stand-in for a bigger modeled array).
        """

        def finalize(slot):
            total = _reduce_values(slot.values, op)
            return [total] * self.size

        return self._collective(
            ctx, CollectiveOp.ALLREDUCE, value, finalize=finalize, nbytes=nbytes
        )

    def allgather(self, ctx, value: Any) -> SimEvent:
        """Every member receives the list of all members' values, in rank order."""

        def finalize(slot):
            gathered = list(slot.values)
            return [gathered] * self.size

        return self._collective(ctx, CollectiveOp.ALLGATHER, value, finalize=finalize)

    def scatter(self, ctx, values: Optional[Sequence] = None, root: int = 0) -> SimEvent:
        """Root supplies one value per member; each member receives its own."""
        if ctx.here == root and (values is None or len(values) != self.size):
            raise ApgasError("scatter root must supply exactly one value per member")

        def finalize(slot):
            vals = slot.values[self._root_rank(slot)]
            return list(vals)

        return self._collective(ctx, CollectiveOp.SCATTER, values, root=root, finalize=finalize)

    def alltoall(self, ctx, values: Sequence, nbytes_per_pair: Optional[int] = None) -> SimEvent:
        """Member i's ``values[j]`` is delivered to member j; each member
        receives the list indexed by source rank.

        ``nbytes_per_pair`` overrides the modeled per-destination payload.
        """
        if len(values) != self.size:
            raise ApgasError("alltoall needs exactly one value per member")

        def finalize(slot):
            return [[slot.values[src][dst] for src in range(self.size)] for dst in range(self.size)]

        per_pair = nbytes_per_pair
        if per_pair is None:
            per_pair = max(1, estimate_nbytes(values) // max(1, self.size))
        return self._collective(
            ctx, CollectiveOp.ALLTOALL, list(values), finalize=finalize, nbytes=per_pair
        )

    # -- mechanics --------------------------------------------------------------------

    def _root_rank(self, slot: _Slot) -> int:
        return slot.meta.get("root_rank", 0)

    def _collective(
        self,
        ctx,
        op: CollectiveOp,
        value: Any,
        root: Optional[int] = None,
        finalize: Optional[Callable] = None,
        nbytes: Optional[int] = None,
    ) -> SimEvent:
        rank = self.rank(ctx.here)
        if self._failed is not None:
            # a member is dead: the rendezvous can never complete
            event = SimEvent(name=f"team.{op.value}")
            event.fail(self._failed)
            return event
        index = self._call_index[ctx.here]
        self._call_index[ctx.here] += 1

        slot = self._slots.get(index)
        if slot is None:
            slot = self._slots[index] = _Slot(op, self.size)
        if slot.op is not op:
            raise ApgasError(
                f"team collective mismatch at call {index}: {slot.op.value} vs {op.value}"
            )
        if root is not None:
            slot.meta["root_rank"] = self.rank(root)
        slot.values[rank] = value
        slot.arrived += 1
        event = slot.events[rank]

        if slot.arrived == self.size:
            self._complete(index, slot, finalize, nbytes)
        return event

    def _complete(self, index: int, slot: _Slot, finalize, nbytes: Optional[int]) -> None:
        self.rt.obs.metrics.counter("team.collectives", op=slot.op.value).inc()
        results = finalize(slot) if finalize is not None else [None] * self.size
        size = nbytes
        if size is None:
            size = max(estimate_nbytes(v) for v in slot.values)
        timing = self.rt.collectives.run(
            slot.op,
            self.members,
            nbytes=size,
            root=self.members[self._root_rank(slot)] if "root_rank" in slot.meta else None,
        )

        def on_done(event):
            self._slots.pop(index, None)
            try:
                event.value
            except BaseException as exc:  # a member died mid-collective
                for ev in slot.events:
                    if not ev.fired:
                        ev.fail(exc)
                return
            for rank, ev in enumerate(slot.events):
                if not ev.fired:
                    ev.trigger(results[rank])

        timing.add_callback(on_done)

    # -- place failure ----------------------------------------------------------------

    def _on_place_death(self, place: int) -> None:
        """A team member died: fail the survivors' outstanding rendezvous.

        Members already parked in a slot would otherwise wait forever for an
        arrival that can never happen; they are woken with the structured
        error, and later calls fail immediately."""
        if self._failed is not None or place not in self._rank:
            return
        self._failed = DeadPlaceError(
            place, detected_by="team", detail=f"team member {place} failed mid-collective"
        )
        slots, self._slots = self._slots, {}
        for slot in slots.values():
            for event in slot.events:
                if not event.fired:
                    event.fail(self._failed)

    def _on_place_revive(self, place: int) -> None:
        """Elastic recovery re-registered a member: reset the rendezvous.

        Once *every* member is live again the team starts a fresh collective
        generation: call indices return to zero and the failure latch clears,
        so a restored computation epoch replays its collective sequence from
        the top.  While any member is still dead the team stays failed.
        """
        if place not in self._rank:
            return
        if any(self.rt.is_dead(p) for p in self.members):
            return
        self._failed = None
        self._slots.clear()
        self._call_index = {p: 0 for p in self.members}


def _reduce_values(values: list, op: Callable):
    """Elementwise reduction preserving the first value's type."""
    total = values[0]
    if isinstance(total, np.ndarray):
        total = total.copy()
    for v in values[1:]:
        total = op(total, v)
    return total
