"""The congruent memory allocator (paper Section 3.3).

RDMA and hardware collectives require memory segments registered with the
network hardware, and the initiating task must know the effective address of
both source and destination segments.  The congruent allocator returns arrays
backed by registered segments (outside the garbage collector's control); when
every place performs the same allocation sequence, *symmetric* mode returns
the same sequence of addresses everywhere.  Segments are backed by large pages
when enabled, minimizing hub TLB entries — essential for RandomAccess.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import ApgasError
from repro.xrt.rdma import MemRegion

#: congruent segments live in their own reserved part of the address space
_BASE_ADDRESS = 0x7F00_0000_0000


class CongruentArray:
    """A registered array: numpy data (optional) + its network memory region.

    ``data`` may be ``None`` for *model-only* arrays: at-scale benchmark runs
    account for a 2 GB-per-place table's transfer behavior without allocating
    terabytes of host memory.  Element access then raises.
    """

    def __init__(self, region: MemRegion, data: Optional[np.ndarray]) -> None:
        self.region = region
        self._data = data

    @property
    def place(self) -> int:
        return self.region.place

    @property
    def address(self) -> int:
        return self.region.address

    @property
    def nbytes(self) -> int:
        return self.region.nbytes

    @property
    def data(self) -> np.ndarray:
        if self._data is None:
            raise ApgasError(
                "model-only congruent array has no backing data; allocate with "
                "materialize=True to access elements"
            )
        return self._data

    @property
    def materialized(self) -> bool:
        return self._data is not None


class CongruentAllocator:
    """Bump allocator of registered, optionally symmetric, segments."""

    def __init__(self, rt, large_pages: bool = True) -> None:
        self.rt = rt
        self.large_pages = large_pages
        self.page_bytes = (
            rt.config.large_page_bytes if large_pages else rt.config.small_page_bytes
        )
        self._next_address: dict[int, int] = {}

    def alloc(
        self,
        place: int,
        shape=None,
        dtype=np.float64,
        nbytes: Optional[int] = None,
        materialize: bool = True,
    ) -> CongruentArray:
        """Allocate and register one segment at ``place``.

        Pass ``shape``/``dtype`` for a real numpy-backed array, or ``nbytes``
        with ``materialize=False`` for a model-only segment.
        """
        self.rt.place(place)  # validate
        if shape is not None:
            data = np.zeros(shape, dtype=dtype) if materialize else None
            size = int(np.prod(np.atleast_1d(shape))) * np.dtype(dtype).itemsize
        elif nbytes is not None:
            if materialize:
                raise ApgasError("materialized arrays need a shape, not raw nbytes")
            data, size = None, int(nbytes)
        else:
            raise ApgasError("alloc needs shape or nbytes")

        address = self._bump(place, size)
        region = MemRegion(
            place=place, nbytes=size, page_bytes=self.page_bytes, address=address, data=data
        )
        self.rt.registry.register(region)
        return CongruentArray(region, data)

    def alloc_symmetric(
        self,
        places: Sequence[int],
        shape=None,
        dtype=np.float64,
        nbytes: Optional[int] = None,
        materialize: bool = True,
    ) -> dict[int, CongruentArray]:
        """One identically-addressed segment per place.

        Requires the allocation sequences of all places to be aligned — the
        paper's "same allocation sequence in every place" contract.
        """
        cursors = {self._next_address.get(p, _BASE_ADDRESS) for p in places}
        if len(cursors) != 1:
            raise ApgasError(
                "symmetric allocation requires identical allocation sequences "
                f"across places, but cursors diverged: {sorted(cursors)}"
            )
        arrays = {p: self.alloc(p, shape, dtype, nbytes, materialize) for p in places}
        addresses = {a.address for a in arrays.values()}
        assert len(addresses) == 1, "bump allocator must keep symmetric addresses equal"
        return arrays

    def _bump(self, place: int, size: int) -> int:
        aligned = -(-size // self.page_bytes) * self.page_bytes
        address = self._next_address.get(place, _BASE_ADDRESS)
        self._next_address[place] = address + aligned
        return address
