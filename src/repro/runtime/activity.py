"""Activities and the APGAS programming surface (``ctx``).

An activity body is a Python callable ``fn(ctx, *args)``; it may be a plain
function or a generator.  Generators ``yield`` effects — compute charges,
remote evaluations, finish waits — and are resumed when the effect completes.
``ctx`` exposes the APGAS constructs of Section 2 of the paper:

=====================  ==========================================
X10                    here
=====================  ==========================================
``async S``            ``ctx.async_(fn, *args)``
``at(p) async S``      ``ctx.at_async(p, fn, *args)``
``at(p) e``            ``val = yield ctx.at(p, fn, *args)``
``finish S``           ``with ctx.finish(pragma) as f: ...`` then
                       ``yield f.wait()``
``atomic S``           ``ctx.atomic(fn)``
``when(c) S``          ``yield from ctx.when(pred)`` then ``S``
``here``               ``ctx.here``
``Place.places()``     ``ctx.places()``
=====================  ==========================================
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.errors import ApgasError
from repro.runtime.finish.base import BaseFinish
from repro.runtime.finish.pragmas import Pragma
from repro.sim.events import SimEvent
from repro.sim.process import Timeout

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import ApgasRuntime

class Activity:
    """One asynchronous task, governed by a finish, running at a place."""

    __slots__ = ("id", "place", "fn", "args", "governing_finish", "_name", "finish_stack", "process")

    def __init__(self, place: int, fn: Callable, args: tuple, finish: BaseFinish, name: str = ""):
        # ids are per-runtime so two identical runs export identical traces
        self.id = next(finish.rt._activity_ids)
        self.place = place
        self.fn = fn
        self.args = args
        self.governing_finish = finish
        self._name = name
        #: innermost-first stack of finish scopes opened inside this activity
        self.finish_stack: list[BaseFinish] = [finish]
        self.process = None  # set when the activity starts

    @property
    def name(self) -> str:
        """Display name, derived on first use — only error paths, traces, and
        deadlock reports read it, and most activities never hit any of those."""
        n = self._name
        if not n:
            n = self._name = f"{getattr(self.fn, '__name__', 'activity')}@{self.place}"
        return n

    @property
    def current_finish(self) -> BaseFinish:
        return self.finish_stack[-1]


class FinishScope:
    """``with ctx.finish(...) as f:`` — push/pop a finish scope.

    Exiting the ``with`` block does *not* block (Python context managers
    cannot suspend); termination is awaited explicitly with
    ``yield f.wait()``.
    """

    def __init__(self, ctx: "ActivityContext", pragma: Pragma, name: str) -> None:
        self._ctx = ctx
        self._pragma = pragma
        self._name = name
        self._finish: Optional[BaseFinish] = None

    def __enter__(self) -> BaseFinish:
        from repro.runtime.finish import make_finish

        self._finish = make_finish(self._ctx.rt, self._ctx.here, self._pragma, self._name)
        race = self._ctx.rt.race
        if race is not None:
            race.on_finish_open(self._finish, self._ctx.activity)
        self._ctx.activity.finish_stack.append(self._finish)
        return self._finish

    def __exit__(self, exc_type, exc, tb) -> None:
        popped = self._ctx.activity.finish_stack.pop()
        if popped is not self._finish:
            raise ApgasError("finish scopes closed out of order")


class ActivityContext:
    """The APGAS API handed to every activity body."""

    __slots__ = ("rt", "activity")

    def __init__(self, rt: "ApgasRuntime", activity: Activity) -> None:
        self.rt = rt
        self.activity = activity

    # -- introspection -----------------------------------------------------------

    @property
    def here(self) -> int:
        """The current place (X10's ``here``)."""
        return self.activity.place

    @property
    def engine(self):
        return self.rt.engine

    @property
    def now(self) -> float:
        return self.rt.engine.now

    def places(self) -> range:
        """All places of this computation, 0..n-1."""
        return range(self.rt.n_places)

    @property
    def n_places(self) -> int:
        return self.rt.n_places

    @property
    def store(self) -> dict:
        """Place-local named state: a plain dict private to ``here``.

        Portable programs keep per-place partitions and partial results in it
        instead of capturing closures, so the same program text runs whether
        the place is simulated (one shared heap) or a real OS process (a real
        private heap).  Keys are program-chosen strings.

        With race detection on, accesses go through a recording proxy over
        the same dict (:class:`~repro.runtime.racedetect.TrackedStore`).
        """
        store = self.rt.place(self.here).store
        race = self.rt.race
        if race is not None:
            return race.tracked_store(store, self.here, self.activity)
        return store

    # -- compute -------------------------------------------------------------------

    def compute(
        self,
        seconds: Optional[float] = None,
        flops: Optional[float] = None,
        flop_rate: Optional[float] = None,
        mem_bytes: Optional[float] = None,
        mem_bw: Optional[float] = None,
    ) -> Timeout:
        """Charge local computation to this place's worker.

        Duration is ``seconds``, plus ``flops / flop_rate``, plus
        ``mem_bytes / mem_bw`` for memory-bound phases.  The place's OS-jitter
        factor is applied, and the work serializes on the place's single
        worker.  Yield the returned effect.
        """
        dt = seconds or 0.0
        if flops is not None:
            if not flop_rate:
                raise ApgasError("compute(flops=...) requires flop_rate")
            dt += flops / flop_rate
        if mem_bytes is not None:
            if not mem_bw:
                raise ApgasError("compute(mem_bytes=...) requires mem_bw")
            dt += mem_bytes / mem_bw
        if dt < 0:
            raise ApgasError(f"negative compute duration {dt!r}")
        dt *= self.rt.jitter.factor(self.here)
        now = self.rt.engine.now
        end = self.rt.place(self.here).worker.reserve(now, dt)
        return Timeout(end - now)

    def sleep(self, seconds: float) -> Timeout:
        """Suspend without occupying the worker (pure waiting)."""
        return Timeout(seconds)

    # -- spawning ----------------------------------------------------------------

    def async_(self, fn: Callable, *args: Any, name: str = "") -> Activity:
        """``async S``: spawn a local activity under the current finish."""
        act = self.rt.spawn_local(self.here, fn, args, self.activity.current_finish, name)
        race = self.rt.race
        if race is not None:
            # safe after the fact: local children always defer one engine
            # step, so the child cannot have run before its clock exists
            race.on_fork(self.activity, act)
        return act

    def at_async(
        self, place: int, fn: Callable, *args: Any, nbytes: Optional[int] = None, name: str = ""
    ) -> None:
        """``at(p) async S``: an active message — non-blocking remote spawn."""
        race = self.rt.race
        clock = race.fork_snapshot(self.activity) if race is not None else None
        self.rt.spawn_remote(
            self.here, place, fn, args, self.activity.current_finish, nbytes, name,
            clock=clock,
        )

    def at(
        self, place: int, fn: Callable, *args: Any, nbytes: Optional[int] = None
    ) -> SimEvent:
        """``at(p) e``: blocking remote evaluation.

        The current activity logically shifts to ``place``, evaluates
        ``fn(ctx, *args)`` there, and resumes here with the value.  Yield the
        returned event to obtain the result.  No finish is involved — the
        activity never terminated, it moved.
        """
        race = self.rt.race
        clock = race.clock_of(self.activity) if race is not None else None
        return self.rt.remote_eval(self.here, place, fn, args, nbytes, clock=clock)

    # -- finish ---------------------------------------------------------------------

    def finish(self, pragma: Pragma = Pragma.DEFAULT, name: str = "") -> FinishScope:
        """Open a finish scope: ``with ctx.finish() as f: ...; yield f.wait()``."""
        return FinishScope(self, pragma, name)

    @property
    def current_finish(self) -> BaseFinish:
        return self.activity.current_finish

    def async_copy(self, src, dst, nbytes: Optional[int] = None) -> None:
        """``Array.asyncCopy``: an RDMA bulk copy treated exactly as if it
        were an async — its termination is tracked by the enclosing finish,
        making it easy to overlap communication and computation::

            with ctx.finish() as f:
                ctx.async_copy(src_array, dst_array)   # srcArray is local
                ...                                    # compute while sending
            yield f.wait()

        ``src`` and ``dst`` are congruent arrays
        (:class:`~repro.runtime.congruent.CongruentArray`); the transfer never
        occupies either place's worker.
        """
        self.rt.async_copy(self.here, src, dst, self.activity.current_finish, nbytes)

    # -- messaging (library-level protocols such as GLB) -----------------------------

    def send(self, place: int, mailbox: str, item: Any, nbytes: Optional[int] = None) -> None:
        """Deliver ``item`` into ``mailbox`` at ``place`` (one-way message)."""
        self.rt.send_item(self.here, place, mailbox, item, nbytes)

    def recv(self, mailbox: str):
        """Blocking receive from this place's ``mailbox``: yield the effect."""
        return self.rt.place(self.here).mailbox(mailbox).get()

    def try_recv(self, mailbox: str):
        """Non-blocking receive: ``(True, item)`` or ``(False, None)``."""
        return self.rt.place(self.here).mailbox(mailbox).try_get()

    # -- atomic / when ----------------------------------------------------------------

    def atomic(self, fn: Callable[[], Any]) -> Any:
        """``atomic S``: run ``fn`` in one uninterrupted step.

        With one cooperative worker per place, atomicity holds by
        construction; the monitor is notified so blocked ``when`` conditions
        re-evaluate.
        """
        result = fn()
        self.rt.place(self.here).monitor.notify_all()
        return result

    def when(self, predicate: Callable[[], bool]):
        """``when(c)``: suspend until ``predicate()`` is true.

        Use as ``yield from ctx.when(pred)``.  The predicate is re-evaluated
        after every atomic block executed at this place.
        """
        while not predicate():
            yield self.rt.place(self.here).monitor.wait()
