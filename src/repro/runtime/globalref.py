"""GlobalRef and Cell: cross-place references with home-place dereference."""

from __future__ import annotations

from typing import Generic, TypeVar

from repro.errors import ApgasError

T = TypeVar("T")


class Cell(Generic[T]):
    """A mutable box, X10's ``Cell[T]`` (used with atomic updates)."""

    __slots__ = ("value",)

    def __init__(self, value: T) -> None:
        self.value = value

    def __call__(self) -> T:
        return self.value


class GlobalRef(Generic[T]):
    """A reference that can be passed freely between places but only
    dereferenced at its home place.

    X10's type checker tracks occurrences of GlobalRefs to ensure they are
    dereferenced in the proper places; here the check happens at runtime:
    :meth:`resolve` raises unless called at the home place.
    """

    __slots__ = ("home", "_value")

    #: serialized size: a global reference is (place, address)
    serialized_nbytes = 16

    def __init__(self, home: int, value: T) -> None:
        self.home = home
        self._value = value

    def resolve(self, ctx) -> T:
        """Dereference; only legal when ``ctx.here == self.home``."""
        if ctx.here != self.home:
            raise ApgasError(
                f"GlobalRef dereferenced at place {ctx.here}, but its home is "
                f"{self.home}; shift there first with ctx.at(ref.home, ...)"
            )
        return self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"GlobalRef(home={self.home})"
