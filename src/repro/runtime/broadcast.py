"""PlaceGroups and scalable spawning-tree broadcast (paper Section 3.2).

Iterating sequentially over many places to send identical messages wastes
time and floods the network.  ``PlaceGroup`` supports efficient broadcast
using spawning trees that parallelize and distribute the task-creation
overhead, with completion detected by nested FINISH_SPMD blocks.
"""

from __future__ import annotations

import inspect
from typing import Callable, Sequence

from repro.errors import ApgasError
from repro.runtime.finish.pragmas import Pragma


class PlaceGroup:
    """An ordered set of distinct places."""

    def __init__(self, places: Sequence[int]) -> None:
        self.places = list(places)
        if len(set(self.places)) != len(self.places):
            raise ApgasError("place group members must be distinct")
        if not self.places:
            raise ApgasError("place group cannot be empty")

    @classmethod
    def world(cls, rt) -> "PlaceGroup":
        return cls(range(rt.n_places))

    def __len__(self) -> int:
        return len(self.places)

    def __iter__(self):
        return iter(self.places)

    def __getitem__(self, index: int) -> int:
        return self.places[index]

    def index_of(self, place: int) -> int:
        return self.places.index(place)


def _first_live(ctx, group: PlaceGroup, lo: int, hi: int):
    """Leftmost index in [lo, hi) whose place is alive, or None.

    Fault tolerance for the spawning tree: when a subtree's designated root
    died, the subtree is re-rooted at its next live member; the (dead) places
    before it are skipped legitimately — nothing can run there.
    """
    for index in range(lo, hi):
        if not ctx.rt.is_dead(group[index]):
            return index
    return None


def broadcast_spawn(ctx, group: PlaceGroup, fn: Callable, *args, name: str = "bcast"):
    """Run ``fn(ctx, *args)`` once at every live place of ``group``;
    generator — use as ``yield from broadcast_spawn(ctx, group, fn, ...)``.

    Task creation is parallelized over a binomial spawning tree; each tree
    node detects its subtree's completion with a nested FINISH_SPMD.  Under
    fault injection the tree re-roots around members that already failed; a
    member failing *mid-broadcast* fails the governing finish with a
    structured :class:`~repro.errors.DeadPlaceError` instead of hanging.
    """
    root = _first_live(ctx, group, 0, len(group))
    if root is None:
        from repro.errors import DeadPlaceError

        raise DeadPlaceError(group[0], detected_by=name, detail="every group member is dead")
    if root != 0:
        ctx.rt.obs.metrics.counter("broadcast.rerooted").inc()
    with ctx.finish(Pragma.FINISH_SPMD, name=f"{name}.root") as f:
        ctx.at_async(group[root], _tree_node, group, root, len(group), fn, args, name=name)
    yield f.wait()


def _tree_node(
    ctx, group: PlaceGroup, lo: int, hi: int, fn: Callable, args: tuple, depth: int = 0, **_kw
):
    """Spawn the binomial subtrees of [lo, hi), then run the body locally.

    ``depth`` is this node's distance from the tree root; the tracer records
    it so the auditor can verify the ceil(log2 n) depth bound.
    """
    obs = ctx.rt.obs
    obs.metrics.counter("broadcast.tree_nodes").inc()
    if obs.trace.enabled:
        obs.trace.instant(
            "broadcast.node", "broadcast", ctx.here, ctx.now, lo=lo, hi=hi, depth=depth
        )
    with ctx.finish(Pragma.FINISH_SPMD, name=f"bcast[{lo},{hi})") as f:
        step = 1
        while lo + step < hi:
            child_lo = lo + step
            child_hi = min(lo + 2 * step, hi)
            child = child_lo
            if ctx.rt.is_dead(group[child]):
                # re-root the subtree at its first surviving member
                child = _first_live(ctx, group, child_lo + 1, child_hi)
                if child is not None:
                    obs.metrics.counter("broadcast.rerooted").inc()
                    if obs.trace.enabled:
                        obs.trace.instant(
                            "broadcast.reroot", "broadcast", ctx.here, ctx.now,
                            dead=group[child_lo], new_root=group[child],
                            lo=child_lo, hi=child_hi,
                        )
            if child is not None:
                ctx.at_async(
                    group[child], _tree_node, group, child, child_hi, fn, args, depth + 1
                )
            step *= 2
        result = fn(ctx, *args)
        if inspect.isgenerator(result):
            yield from result
    yield f.wait()


def sequential_spawn(ctx, group: PlaceGroup, fn: Callable, *args):
    """The naive Section 2 idiom: the root loops over places one at a time.

    Kept as the broadcast-ablation baseline: a single place creates every
    task and a single finish home absorbs every termination message.
    """
    with ctx.finish(Pragma.DEFAULT, name="seq-bcast") as f:
        for place in group:
            ctx.at_async(place, fn, *args)
    yield f.wait()
