"""Clocks: X10's dynamic barriers (``Clock.advanceAll()``)."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ApgasError
from repro.machine.bandwidth import barrier_time
from repro.sim.events import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import ApgasRuntime


class Clock:
    """A dynamic barrier over a changing set of registered activities.

    Registered activities call ``yield clock.advance(ctx)``; the phase
    completes when every registered activity has advanced (or dropped).  The
    release pays the machine's collective-barrier latency across the places of
    the registered activities.
    """

    def __init__(self, rt: "ApgasRuntime") -> None:
        self.rt = rt
        self._places: list[int] = []
        self._registered = 0
        self._arrived = 0
        self._phase = 0
        self._release = SimEvent(name="clock.phase0")

    @property
    def phase(self) -> int:
        return self._phase

    @property
    def registered(self) -> int:
        return self._registered

    def register(self, ctx) -> None:
        """A ``clocked async``: the activity joins the barrier set."""
        self._registered += 1
        self._places.append(ctx.here)

    def drop(self, ctx) -> None:
        """The activity leaves the clock; it no longer holds up phases."""
        if self._registered <= 0:
            raise ApgasError("drop on a clock with no registered activities")
        self._registered -= 1
        if ctx.here in self._places:
            self._places.remove(ctx.here)
        self._maybe_release()

    def advance(self, ctx) -> SimEvent:
        """``Clock.advanceAll()``: yield the returned event to block at the barrier."""
        if self._registered == 0:
            raise ApgasError("advance on a clock with no registered activities")
        event = self._release
        self._arrived += 1
        self._maybe_release()
        return event

    def _maybe_release(self) -> None:
        if self._registered == 0 or self._arrived < self._registered:
            return
        release, self._release = self._release, SimEvent(name=f"clock.phase{self._phase + 1}")
        self._arrived = 0
        self._phase += 1
        n = max(1, len(set(self._places)))
        delay = barrier_time(self.rt.config, n)
        self.rt.engine.schedule(delay, lambda: release.trigger())
