"""Dynamic determinacy-race detection for the simulated APGAS runtime.

The detector maintains one vector clock per *task* and checks every
``ctx.store`` access against the happens-before order induced by the
finish/async/at structure (the only synchronization the APGAS subset of the
paper offers):

``async`` (local or remote)
    forks a new task: the child starts with a copy of the parent's clock plus
    a fresh component of its own, and the parent ticks its own component so
    the child cannot observe later parental work as ordered.

activity termination
    joins into the governing finish: the child's final clock is merged into a
    per-finish accumulator.

``finish`` wait
    once the finish quiesces, the accumulator is merged into the clock of the
    activity that *opened* the scope (the only activity that may wait on it in
    this codebase's idiom), establishing children -> continuation edges.

``at``
    is a *shift*, not a fork — the evaluating body shares the caller's clock
    object, exactly matching the paper's "the current activity moves" reading.

Accesses are observed through :class:`TrackedStore`, a thin proxy the context
returns instead of the raw per-place dict when detection is on.  Two accesses
to the same ``(place, key)`` race when neither task's clock has observed the
other's access; a FastTrack-style per-key state (last write epoch + read
table) keeps the check O(readers).

Zero-overhead contract (the PR 1 tracer pattern): with detection off,
``rt.race is None`` and every hot path pays exactly one attribute test.  The
detector never schedules engine events and never writes to the tracer, so a
race-free run with detection ON still produces the bit-identical trace of a
detection-OFF run.

Known model limits (documented, asserted nowhere): happens-before edges via
mailbox ``send``/``recv`` are *not* modeled — a read ordered only by a message
round-trip is reported as a race; and an ``at`` whose result event is
deliberately dropped so the body races its own caller is outside the shift
model.  Both are conservative in the direction the static/dynamic agreement
contract needs (the dynamic layer may over-report, never under-report, races
the MHP analysis also over-approximates).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterator, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.activity import Activity
    from repro.runtime.finish.base import BaseFinish

#: process-wide force switch: `repro race <script.py>` runs arbitrary example
#: scripts that construct their own runtimes; flipping this makes every
#: subsequently-built ApgasRuntime enable detection and register itself in
#: ACTIVE so the CLI can harvest the reports afterwards.
_FORCED = False

#: detectors of runtimes built while the force switch was on
ACTIVE: list["RaceDetector"] = []


def force_detection(on: bool) -> None:
    """Globally force race detection on runtimes built from now on."""
    global _FORCED
    _FORCED = on
    if on:
        ACTIVE.clear()


def detection_forced() -> bool:
    return _FORCED


@dataclass(frozen=True)
class RaceReport:
    """One happens-before violation on a ``(place, key)`` store cell."""

    kind: str          #: "write-write" | "read-write" | "write-read"
    place: int
    key: Any
    #: (path, line, op, task) of the earlier and the current access
    prior: tuple
    current: tuple
    sim_time: float

    def describe(self) -> str:
        pp, pl, pop, ptask = self.prior
        cp, cl, cop, ctask = self.current
        return (
            f"{self.kind} race at place {self.place} on store key {self.key!r}: "
            f"{pop} at {pp}:{pl} (task {ptask}) is unordered with "
            f"{cop} at {cp}:{cl} (task {ctask})"
        )


class VectorClock:
    """A task's logical time: ``{task_id: count}`` plus a stable task id.

    The task id is the id of the activity that *created* the clock.  An ``at``
    body shares the caller's clock instance — same task, the activity moved —
    so the id survives the shift.
    """

    __slots__ = ("tid", "v")

    def __init__(self, tid: int, v: Optional[dict] = None) -> None:
        self.tid = tid
        self.v = v if v is not None else {tid: 1}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VectorClock(tid={self.tid}, v={self.v})"


class _KeyState:
    """Per ``(place, key)`` access history: last write epoch + read table."""

    __slots__ = ("write", "reads")

    def __init__(self) -> None:
        #: (task_id, count, path, line) of the last write, or None
        self.write: Optional[tuple] = None
        #: task_id -> (count, path, line) of that task's latest read
        self.reads: dict[int, tuple] = {}


class RaceDetector:
    """Vector-clock happens-before checker wired into one runtime."""

    def __init__(self, rt) -> None:
        self.rt = rt
        #: activity.id -> VectorClock (at-eval bodies alias their caller's)
        self._clocks: dict[int, VectorClock] = {}
        #: finish_id -> merged clock of every joined child
        self._acc: dict[int, dict] = {}
        #: finish_id -> the activity that opened the scope
        self._owner: dict[int, "Activity"] = {}
        #: (place, key) -> _KeyState
        self._keys: dict[tuple, _KeyState] = {}
        self.races: list[RaceReport] = []
        self._seen: set = set()
        metrics = rt.obs.metrics
        self._m_on = metrics.enabled
        self._c_accesses = metrics.counter("race.accesses")
        self._c_races = metrics.counter("race.violations")
        if _FORCED:
            ACTIVE.append(self)

    # -- clock bookkeeping -------------------------------------------------------

    def clock_of(self, activity: "Activity") -> VectorClock:
        clock = self._clocks.get(activity.id)
        if clock is None:
            clock = self._clocks[activity.id] = VectorClock(activity.id)
        return clock

    def on_fork(self, parent: "Activity", child: "Activity") -> None:
        """A local ``async``: child inherits, parent ticks."""
        pc = self.clock_of(parent)
        cv = dict(pc.v)
        cv[child.id] = 1
        self._clocks[child.id] = VectorClock(child.id, cv)
        pc.v[pc.tid] = pc.v.get(pc.tid, 0) + 1

    def fork_snapshot(self, parent: "Activity") -> dict:
        """A remote ``at async``: the child is created at the destination, so
        the fork edge travels as a plain snapshot in the spawn message."""
        pc = self.clock_of(parent)
        snap = dict(pc.v)
        pc.v[pc.tid] = pc.v.get(pc.tid, 0) + 1
        return snap

    def adopt(self, activity: "Activity", snapshot: dict) -> None:
        """Install a remotely-shipped fork snapshot as ``activity``'s clock."""
        v = dict(snapshot)
        v[activity.id] = 1
        self._clocks[activity.id] = VectorClock(activity.id, v)

    def share(self, shifted: "Activity", clock: Optional[VectorClock]) -> None:
        """An ``at`` body: the shifted activity *is* the caller, moved."""
        if clock is not None:
            self._clocks[shifted.id] = clock

    def on_join(self, activity: "Activity") -> None:
        """Activity termination: final clock folds into the finish accumulator."""
        clock = self._clocks.pop(activity.id, None)
        if clock is None:
            return  # never forked through ctx and made no accesses
        finish = activity.governing_finish
        fid = getattr(finish, "finish_id", None)
        if fid is None:
            return
        acc = self._acc.get(fid)
        if acc is None:
            self._acc[fid] = dict(clock.v)
        else:
            for tid, n in clock.v.items():
                if acc.get(tid, 0) < n:
                    acc[tid] = n

    def on_finish_open(self, finish: "BaseFinish", owner: "Activity") -> None:
        self._owner[finish.finish_id] = owner

    def on_wait(self, finish: "BaseFinish", event) -> None:
        """``f.wait()``: when the finish quiesces, children's merged clocks
        flow into the waiting owner (the join edge of the finish construct)."""
        owner = self._owner.get(finish.finish_id)
        if owner is None:
            return  # the root finish: nothing waits on it through ctx

        def merge(_event=None) -> None:
            acc = self._acc.get(finish.finish_id)
            oc = self.clock_of(owner)
            if acc:
                v = oc.v
                for tid, n in acc.items():
                    if v.get(tid, 0) < n:
                        v[tid] = n
                v[oc.tid] = v.get(oc.tid, 0) + 1

        if event.fired:
            merge()
        else:
            event.add_callback(merge)

    # -- store instrumentation -----------------------------------------------------

    def tracked_store(self, store: dict, place: int, activity: "Activity") -> "TrackedStore":
        return TrackedStore(store, self, place, self.clock_of(activity))

    def record(self, place: int, key, op: str, clock: VectorClock,
               path: str, line: int) -> None:
        """Check one access against the key's history, then record it."""
        if self._m_on:
            self._c_accesses.value += 1
        state = self._keys.get((place, key))
        if state is None:
            state = self._keys[(place, key)] = _KeyState()
        tid = clock.tid
        v = clock.v
        current = (path, line, op, tid)
        write = state.write
        if op == "write":
            if write is not None and write[0] != tid and v.get(write[0], 0) < write[1]:
                self._report("write-write", place, key,
                             (write[2], write[3], "write", write[0]), current)
            for rtid, (count, rpath, rline) in state.reads.items():
                if rtid != tid and v.get(rtid, 0) < count:
                    self._report("read-write", place, key, (rpath, rline, "read", rtid), current)
            state.write = (tid, v.get(tid, 0), path, line)
            state.reads = {}
        else:
            if write is not None and write[0] != tid and v.get(write[0], 0) < write[1]:
                self._report("write-read", place, key,
                             (write[2], write[3], "write", write[0]), current)
            state.reads[tid] = (v.get(tid, 0), path, line)

    def _report(self, kind: str, place: int, key, prior: tuple, current: tuple) -> None:
        dedup = (kind, place, key, prior[:2], current[:2])
        if dedup in self._seen:
            return
        self._seen.add(dedup)
        if self._m_on:
            self._c_races.value += 1
        self.races.append(
            RaceReport(kind, place, key, prior, current, self.rt.engine.now)
        )

    # -- reporting ----------------------------------------------------------------

    @property
    def clean(self) -> bool:
        return not self.races

    def race_pairs(self) -> Iterator[frozenset]:
        """Each race as an unordered ``{(path, line), (path, line)}`` pair —
        the currency of the static/dynamic agreement check."""
        for race in self.races:
            yield frozenset({race.prior[:2], race.current[:2]})


class TrackedStore:
    """Access-recording proxy over a place's ``ctx.store`` dict.

    Only handed out while detection is on; the raw dict is the stored state,
    so detector-on and detector-off runs share identical store contents.
    Granularity is the top-level key: mutations *inside* a stored object
    (e.g. a sub-dict a mailbox helper returns) are not observed.
    """

    __slots__ = ("_d", "_det", "_place", "_clock")

    def __init__(self, d: dict, det: RaceDetector, place: int, clock: VectorClock) -> None:
        self._d = d
        self._det = det
        self._place = place
        self._clock = clock

    def _note(self, key, op: str) -> None:
        frame = sys._getframe(2)  # the store-method caller's source coordinates
        self._det.record(self._place, key, op, self._clock,
                         frame.f_code.co_filename, frame.f_lineno)

    # reads
    def __getitem__(self, key):
        self._note(key, "read")
        return self._d[key]

    def __contains__(self, key) -> bool:
        self._note(key, "read")
        return key in self._d

    def get(self, key, default=None):
        self._note(key, "read")
        return self._d.get(key, default)

    # writes
    def __setitem__(self, key, value) -> None:
        self._note(key, "write")
        self._d[key] = value

    def __delitem__(self, key) -> None:
        self._note(key, "write")
        del self._d[key]

    def update(self, other=(), **kwargs) -> None:
        items = dict(other, **kwargs)
        for key in items:
            self._note(key, "write")
        self._d.update(items)

    def clear(self) -> None:
        for key in list(self._d):
            self._note(key, "write")
        self._d.clear()

    # read-modify-write
    def setdefault(self, key, default=None):
        self._note(key, "read")
        if key not in self._d:
            self._note(key, "write")
        return self._d.setdefault(key, default)

    def pop(self, key, *default):
        self._note(key, "read")
        self._note(key, "write")
        return self._d.pop(key, *default)

    # unkeyed views: reads of every present key
    def keys(self):
        for key in list(self._d):
            self._note(key, "read")
        return self._d.keys()

    def items(self):
        for key in list(self._d):
            self._note(key, "read")
        return self._d.items()

    def values(self):
        for key in list(self._d):
            self._note(key, "read")
        return self._d.values()

    def __iter__(self):
        for key in list(self._d):
            self._note(key, "read")
        return iter(self._d)

    def __len__(self) -> int:
        return len(self._d)

    def __bool__(self) -> bool:
        return bool(self._d)

    def __eq__(self, other) -> bool:
        if isinstance(other, TrackedStore):
            other = other._d
        return self._d == other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TrackedStore({self._d!r})"


def run_script(path: str, run_name: str = "__main__") -> list[RaceDetector]:
    """Execute a Python script with detection forced on every runtime it
    builds; returns the detectors of those runtimes (``repro race file.py``)."""
    import runpy

    force_detection(True)
    try:
        runpy.run_path(path, run_name=run_name)
        return list(ACTIVE)
    finally:
        force_detection(False)
