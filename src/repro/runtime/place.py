"""Per-place runtime state: the worker, mailboxes, and the atomic/when monitor."""

from __future__ import annotations

from typing import Dict

from repro.machine.resources import MultiLaneResource, SerialResource
from repro.sim.events import SimEvent
from repro.sim.store import Store


class Monitor:
    """Condition-variable support for X10's ``when`` / ``atomic``.

    ``atomic`` blocks execute in a single uninterrupted step (trivially true
    with one cooperative worker per place) and notify the monitor so blocked
    ``when`` conditions re-evaluate.
    """

    def __init__(self) -> None:
        self._waiters: list[SimEvent] = []

    def wait(self) -> SimEvent:
        event = SimEvent(name="monitor.wait")
        self._waiters.append(event)
        return event

    def notify_all(self) -> None:
        waiters, self._waiters = self._waiters, []
        for event in waiters:
            event.trigger()


class PlaceRuntime:
    """A place: a collection of data and worker threads operating on it.

    The default mirrors the paper's execution mode — ``X10_NTHREADS=1``, one
    worker per place, each place bound to one core.  ``workers > 1`` models
    the intra-place schedulers the paper leaves as future work ("a more
    natural APGAS implementation would take advantage of intra-place
    concurrency, run with only one or a few places per host"): concurrent
    activities' compute then overlaps across the worker lanes.
    """

    def __init__(self, place_id: int, workers: int = 1) -> None:
        self.id = place_id
        self.workers = workers
        #: compute effects are dispatched over the worker lanes
        self.worker = (
            SerialResource(f"worker[{place_id}]")
            if workers == 1
            else MultiLaneResource(workers, f"workers[{place_id}]")
        )
        self.monitor = Monitor()
        self._mailboxes: Dict[str, Store] = {}
        #: place-local named state (``ctx.store``) — the portable programs'
        #: per-place heap, mirroring what a real place process keeps in its
        #: own address space (the procs backend gives each place a real one)
        self.store: Dict[str, object] = {}
        #: number of activities started here (diagnostics / load metrics)
        self.activities_run = 0

    def mailbox(self, name: str) -> Store:
        box = self._mailboxes.get(name)
        if box is None:
            box = self._mailboxes[name] = Store(name=f"p{self.id}:{name}")
        return box

    def busy_time(self) -> float:
        """Total worker-occupied simulated time (for efficiency metrics)."""
        return self.worker.total_busy
