"""The APGAS runtime: places, spawning, remote evaluation, finish plumbing."""

from __future__ import annotations

import inspect
import itertools
from typing import Any, Callable, Optional

from repro.chaos import ChaosInjector, ChaosSpec
from repro.errors import ApgasError, DeadPlaceError, PlaceError
from repro.machine.config import MachineConfig
from repro.machine.noise import JitterModel
from repro.machine.topology import Topology
from repro.obs import Observability
from repro.runtime import racedetect
from repro.runtime.activity import Activity, ActivityContext
from repro.runtime.finish import BaseFinish, Pragma, make_finish
from repro.runtime.place import PlaceRuntime
from repro.sim import make_engine
from repro.sim.events import SimEvent
from repro.sim.process import Process
from repro.xrt import (
    Collectives,
    MemoryRegistry,
    PamiTransport,
    RdmaEngine,
    estimate_nbytes,
)

_reply_ids = itertools.count(1)


class RuntimeStats:
    """Counters a completed run exposes for analysis and tests.

    Folded into the :mod:`repro.obs` metrics registry: a read-only view over
    the ``runtime.*`` series with the legacy attribute surface.
    """

    __slots__ = ("_metrics",)

    def __init__(self, metrics) -> None:
        self._metrics = metrics

    @property
    def activities_spawned(self) -> int:
        return int(self._metrics.value("runtime.activities_spawned"))

    @property
    def remote_spawns(self) -> int:
        return int(self._metrics.value("runtime.remote_spawns"))

    @property
    def remote_evals(self) -> int:
        return int(self._metrics.value("runtime.remote_evals"))


class ApgasRuntime:
    """A single X10 computation over a collection of places.

    The number of places and the mapping from places to nodes is specified at
    launch (paper Section 2.1): place ``i`` is bound to core ``i % 32`` of
    octant ``i // 32``.  Execution starts with ``main`` at place 0; other
    places are initially idle.

    Example::

        rt = ApgasRuntime(places=64, config=MachineConfig.small())

        def main(ctx):
            with ctx.finish() as f:
                for p in ctx.places():
                    ctx.at_async(p, work)
            yield f.wait()

        def work(ctx):
            yield ctx.compute(seconds=1e-3)

        rt.run(main)
        print(rt.now)   # simulated makespan
    """

    def __init__(
        self,
        places: int,
        config: Optional[MachineConfig] = None,
        transport_cls: type = PamiTransport,
        collectives_emulated: Optional[bool] = None,
        workers_per_place: int = 1,
        obs: Optional[Observability] = None,
        chaos: Optional[object] = None,
        engine: Optional[object] = None,
        race: bool = False,
    ) -> None:
        """``workers_per_place`` models ``X10_NTHREADS``: the paper runs one
        worker per place (the default); larger values let concurrent
        activities' compute overlap within a place (the intra-place
        scheduling the paper defers to future work).  ``obs`` is the
        observability bundle (metrics + tracer) shared by every layer; one
        with tracing disabled is created when omitted.  ``chaos`` is a
        :class:`~repro.chaos.ChaosSpec` (or its ``parse`` text form) enabling
        deterministic fault injection; the transport then runs in resilient
        mode and the runtime survives — or fails structurally on — place
        deaths.  ``engine`` selects the event core: an engine-name string
        (``"slotted"`` | ``"classic"``, see :func:`repro.sim.make_engine`), an
        already-built engine instance, or None for the default core.
        ``race`` enables the dynamic determinacy-race detector
        (:mod:`repro.runtime.racedetect`): vector clocks at fork/join/at/
        finish edges plus happens-before checks on every ``ctx.store``
        access; off by default with zero overhead beyond one attribute test
        per hot-path branch."""
        if workers_per_place < 1:
            raise ApgasError("workers_per_place must be >= 1")
        self.workers_per_place = workers_per_place
        self.config = config if config is not None else MachineConfig()
        self.obs = obs if obs is not None else Observability()
        if engine is None or isinstance(engine, str):
            self.engine = make_engine(engine) if engine else make_engine()
        else:
            self.engine = engine
        #: the scheduling seam (see :mod:`repro.xrt.backend`): this runtime's
        #: clock is the virtual-time engine itself; the procs backend swaps a
        #: wall-clock loop into the same slot
        self.clock = self.engine
        self.obs.observe_engine(self.engine)
        self.topology = Topology(self.config, places)
        if chaos is None:
            self.chaos: Optional[ChaosInjector] = None
            self.transport = transport_cls(self.engine, self.config, self.topology, obs=self.obs)
        else:
            spec = ChaosSpec.parse(chaos) if isinstance(chaos, str) else chaos
            spec.validate_places(places)
            self.chaos = ChaosInjector(spec, self.engine, self.obs)
            self.chaos.subscribe_death(self._on_place_death)
            self.transport = transport_cls(
                self.engine, self.config, self.topology, obs=self.obs, chaos=self.chaos
            )
        self.network = self.transport.network
        self.collectives = Collectives(self.transport, emulated=collectives_emulated)
        self.registry = MemoryRegistry()
        self.rdma = (
            RdmaEngine(self.transport, self.registry) if self.transport.supports_rdma else None
        )
        self.jitter = JitterModel(self.config, places)
        self._places = [PlaceRuntime(i, workers=workers_per_place) for i in range(places)]
        self._finishes: dict[int, BaseFinish] = {}
        #: per-runtime id stream (module-global ids would leak across runs and
        #: make otherwise-identical runs export different traces)
        self._finish_ids = itertools.count(1)
        self._activity_ids = itertools.count(1)
        self._ungoverned = _UngovernedFinish(self)
        #: reply_id -> (event, evaluating place); the place lets a place death
        #: fail the outstanding evaluations it can never answer
        self._replies: dict[int, tuple[SimEvent, int]] = {}
        #: live processes by hosting place, killed wholesale on place failure
        self._procs_at: dict[int, set[Process]] = {}
        #: function object -> is-generator-function (spawn fast-path dispatch)
        self._genfunc_cache: dict = {}
        metrics = self.obs.metrics
        self._m_on = metrics.enabled
        self._c_activities = metrics.counter("runtime.activities_spawned")
        self._c_remote_spawns = metrics.counter("runtime.remote_spawns")
        self._c_remote_evals = metrics.counter("runtime.remote_evals")
        self.stats = RuntimeStats(metrics)
        #: the determinacy-race detector, or None (the zero-overhead default)
        self.race: Optional[racedetect.RaceDetector] = (
            racedetect.RaceDetector(self)
            if race or racedetect.detection_forced()
            else None
        )

        self.transport.register_handler("apgas-spawn", self._on_spawn)
        self.transport.register_handler("apgas-eval", self._on_eval)
        self.transport.register_handler("apgas-reply", self._on_reply)
        self.transport.register_handler("apgas-finish", self._on_finish_ctl)
        self.transport.register_handler("apgas-item", self._on_item)

    # -- basic accessors -----------------------------------------------------------

    @property
    def n_places(self) -> int:
        return len(self._places)

    def place(self, place_id: int) -> PlaceRuntime:
        try:
            return self._places[place_id]
        except IndexError:
            raise PlaceError(f"place {place_id} outside 0..{self.n_places - 1}") from None

    @property
    def now(self) -> float:
        return self.engine.now

    def is_dead(self, place: int) -> bool:
        """True once fault injection failed ``place`` (always False without)."""
        return self.chaos is not None and self.chaos.is_dead(place)

    def live_activities(self, place: int) -> int:
        """Activities currently hosted at ``place``.

        The serving scheduler polls this to drain stragglers of a failed job
        before handing the job's places to the next tenant."""
        return len(self._procs_at.get(place, ()))

    # -- running a program ------------------------------------------------------------

    def run(
        self,
        main: Callable,
        *args: Any,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> Any:
        """Execute ``main(ctx, *args)`` at place 0 and drain the simulation.

        Returns ``main``'s return value.  The root finish governs ``main`` and
        everything it transitively spawns, exactly as X10 wraps the main
        method.  ``max_events`` is the chaos tests' hang guard: the engine
        raises :class:`~repro.errors.StepLimitError` past that many callbacks.
        """
        root = make_finish(self, 0, Pragma.DEFAULT, name="root")
        activity = self.spawn_local(0, main, args, root, name="main")
        self.engine.run(until=until, max_events=max_events)
        if activity.process is None or not activity.process.done.fired:
            if self.is_dead(0):
                raise DeadPlaceError(0, detected_by="run", detail="the root place failed")
            raise ApgasError("main activity did not complete")
        result = activity.process.done.value
        if root.failed is not None:
            # a place death escaped main uncaught and was delivered to the
            # root finish; surface it exactly as X10's main would
            raise root.failed
        return result

    # -- spawning --------------------------------------------------------------------

    def spawn_local(
        self, place: int, fn: Callable, args: tuple, finish: BaseFinish, name: str = ""
    ) -> Activity:
        self.place(place)  # validate
        finish.fork(place, place)
        return self._start_activity(place, fn, args, finish, name)

    def spawn_remote(
        self,
        src: int,
        dst: int,
        fn: Callable,
        args: tuple,
        finish: BaseFinish,
        nbytes: Optional[int] = None,
        name: str = "",
        clock: Optional[dict] = None,
    ) -> None:
        self.place(dst)
        if self.is_dead(dst):
            raise DeadPlaceError(dst, detected_by=f"spawn@{src}", detail="async to a dead place")
        finish.fork(src, dst)
        if self._m_on:
            self._c_remote_spawns.value += 1
        size = nbytes if nbytes is not None else estimate_nbytes(args)
        token = finish.spawn_departed(src, dst)
        # ``clock`` (the race detector's fork snapshot) rides in the message
        # but never in ``size``: detector-on runs keep detector-off traffic.
        self.transport.post_args(
            src, dst, "apgas-spawn", (fn, args, finish, name, token, clock), size
        )

    def _on_spawn(self, dst: int, body) -> None:
        fn, args, finish, name, token, clock = body
        if not finish.spawn_landed(token):
            return  # written off by a place death; its fork is already settled
        # The delivery event *is* the asynchrony of ``at (p) async``: the body
        # may run right here rather than through one more zero-delay hop.
        self._start_activity(
            dst, fn, args, finish, name, allow_plain=True, inline=True, clock=clock
        )

    def _is_genfunc(self, fn: Callable) -> bool:
        key = getattr(fn, "__func__", fn)
        flag = self._genfunc_cache.get(key)
        if flag is None:
            flag = self._genfunc_cache[key] = inspect.isgeneratorfunction(fn)
        return flag

    def _start_activity(
        self,
        place: int,
        fn: Callable,
        args: tuple,
        finish: BaseFinish,
        name: str,
        allow_plain: bool = False,
        inline: bool = False,
        clock: Optional[dict] = None,
    ) -> Activity:
        activity = Activity(place, fn, args, finish, name)
        if clock is not None and self.race is not None:
            # a remotely-shipped fork snapshot: install before the body can
            # run (the inline plain path below executes it immediately)
            self.race.adopt(activity, clock)
        if self._m_on:
            self._c_activities.value += 1
        self.place(place).activities_run += 1
        tracer = self.obs.trace
        if (
            allow_plain
            and self.chaos is None
            and not tracer.enabled
            and not self._is_genfunc(fn)
        ):
            # Plain-function body on a reliable fabric with tracing off: skip
            # the generator/Process machinery entirely.  ``inline`` callers
            # (message delivery) already sit inside a scheduled event — the
            # asynchrony the spawn requires — so the body runs right here;
            # synchronous callers (``spawn_local``) must defer one step or the
            # child would run inside its parent's frame.
            if inline:
                self._run_plain(activity)
            else:
                self.engine.call_soon_call(self._run_plain, activity)
            return activity

        def runner():
            ctx = ActivityContext(self, activity)
            if tracer.enabled:
                tracer.span_begin(
                    activity.name, "activity", place, self.engine.now,
                    id=activity.id, finish=finish.name,
                )
            vanished = False
            try:
                result = fn(ctx, *args)
                if inspect.isgenerator(result):
                    result = yield from result
                return result
            except GeneratorExit:
                # the hosting place failed mid-activity: it vanishes without
                # joining — exactly the silence the finish layer must detect
                vanished = True
                raise
            except DeadPlaceError as exc:
                # Structured delivery: a place-death error escaping an
                # activity belongs to the governing finish, not the engine.
                # If the finish already failed (its collective or remote peer
                # died at kill time), the waiters hold the error and this is
                # an absorbed straggler.  Otherwise — e.g. a survivor whose
                # own finish had no stake at the dead place, like a broadcast
                # root whose subtree died — fail the finish now so its
                # waiters re-raise, letting the enclosing scope decide
                # whether the death is fatal.  Either way, fall through to
                # the straggler join below.
                if finish.failed is None:
                    finish._fail(exc)
            finally:
                if not vanished:
                    if tracer.enabled:
                        tracer.span_end(
                            activity.name, "activity", place, self.engine.now, id=activity.id
                        )
                    if len(activity.finish_stack) != 1:
                        raise ApgasError(
                            f"activity {activity.name} terminated inside an open finish scope"
                        )
                    if self.race is not None:
                        self.race.on_join(activity)
                    finish.join(place)

        # Delivery-driven starts on a reliable fabric run their first step
        # inside the delivery event, mirroring the plain fast path so traced
        # and untraced runs execute the same number of engine events.
        activity.process = Process(
            self.engine, runner(), name=activity.name,
            immediate=inline and self.chaos is None,
        )
        self._track_process(place, activity.process)
        return activity

    def _run_plain(self, activity: Activity) -> None:
        """The scheduled step of a plain-function activity (no chaos/trace)."""
        place = activity.place
        fn = activity.fn
        finish = activity.governing_finish
        ctx = ActivityContext(self, activity)
        try:
            result = fn(ctx, *activity.args)
        except BaseException:
            if len(activity.finish_stack) != 1:
                raise ApgasError(
                    f"activity {activity.name} terminated inside an open finish scope"
                )
            if self.race is not None:
                self.race.on_join(activity)
            finish.join(place)
            raise
        if inspect.isgenerator(result):
            # a non-generator callable handed back a generator body after
            # all; fall back to driving it as a process
            def drive():
                vanished = False
                try:
                    value = yield from result
                    return value
                except GeneratorExit:
                    vanished = True
                    raise
                finally:
                    if not vanished:
                        if len(activity.finish_stack) != 1:
                            raise ApgasError(
                                f"activity {activity.name} terminated inside "
                                "an open finish scope"
                            )
                        if self.race is not None:
                            self.race.on_join(activity)
                        finish.join(place)

            activity.process = Process(self.engine, drive(), name=activity.name)
            return
        if len(activity.finish_stack) != 1:
            raise ApgasError(
                f"activity {activity.name} terminated inside an open finish scope"
            )
        if self.race is not None:
            self.race.on_join(activity)
        finish.join(place)

    def _track_process(self, place: int, process: Process) -> None:
        """Remember which place hosts the process (chaos only: a place death
        must kill its processes mid-instruction, or the engine would report
        their permanently-blocked effects as a deadlock)."""
        if self.chaos is None:
            return
        procs = self._procs_at.setdefault(place, set())
        procs.add(process)
        process.done.add_callback(lambda _e: procs.discard(process))
        process.bookkeeping_callbacks += 1

    # -- remote evaluation (`at (p) e`) --------------------------------------------------

    def remote_eval(
        self,
        src: int,
        dst: int,
        fn: Callable,
        args: tuple,
        nbytes: Optional[int] = None,
        clock: Optional[object] = None,
    ) -> SimEvent:
        """The activity shifts to ``dst``, evaluates, and the result ships back."""
        self.place(dst)
        if self._m_on:
            self._c_remote_evals.value += 1
        result_event = SimEvent(name=f"at({dst})")
        if self.is_dead(dst):
            result_event.fail(
                DeadPlaceError(dst, detected_by=f"at@{src}", detail="evaluation at a dead place")
            )
            return result_event
        if src == dst:
            # `at (here)` degenerates to a direct call
            self._eval_here(dst, fn, args, src, result_event, clock)
            return result_event
        reply_id = next(_reply_ids)
        self._replies[reply_id] = (result_event, dst)
        size = nbytes if nbytes is not None else estimate_nbytes(args)
        self.transport.post_args(src, dst, "apgas-eval", (fn, args, src, reply_id, clock), size)
        return result_event

    def _on_eval(self, dst: int, body) -> None:
        fn, args, reply_to, reply_id, clock = body
        if self.chaos is None and not self._is_genfunc(fn):
            # Plain-function body on a reliable fabric: the delivery event we
            # are already inside provides the shift to ``dst``, so evaluate
            # now and ship the value straight home, skipping the
            # generator/Process machinery entirely.
            self._eval_plain(dst, body)
            return

        def runner():
            # the shifted activity evaluates at dst, then the value travels home
            shifted = Activity(dst, fn, args, self._ungoverned, name=f"at-eval@{dst}")
            if self.race is not None:
                self.race.share(shifted, clock)
            ctx = ActivityContext(self, shifted)
            try:
                result = fn(ctx, *args)
                if inspect.isgenerator(result):
                    result = yield from result
            except GeneratorExit:
                raise  # killed place: no reply; the caller learns through _replies
            except BaseException as exc:  # ship the exception home
                self._send_reply(dst, reply_to, reply_id, exc, is_error=True)
                return
            self._send_reply(dst, reply_to, reply_id, result, is_error=False)

        self._track_process(
            dst,
            Process(
                self.engine, runner(), name=f"at-eval@{dst}",
                immediate=self.chaos is None,
            ),
        )

    def _eval_plain(self, dst: int, body) -> None:
        """The scheduled step of a plain-function remote eval (no chaos)."""
        fn, args, reply_to, reply_id, clock = body
        shifted = Activity(dst, fn, args, self._ungoverned, name=f"at-eval@{dst}")
        if self.race is not None:
            self.race.share(shifted, clock)
        ctx = ActivityContext(self, shifted)
        try:
            result = fn(ctx, *args)
        except BaseException as exc:  # ship the exception home
            self._send_reply(dst, reply_to, reply_id, exc, is_error=True)
            return
        if inspect.isgenerator(result):
            # a non-generator callable handed back a generator body after
            # all; drive it as a process and reply when it finishes
            def drive():
                try:
                    value = yield from result
                except BaseException as exc:
                    self._send_reply(dst, reply_to, reply_id, exc, is_error=True)
                    return
                self._send_reply(dst, reply_to, reply_id, value, is_error=False)

            Process(self.engine, drive(), name=f"at-eval@{dst}")
            return
        self._send_reply(dst, reply_to, reply_id, result, is_error=False)

    def _eval_here(
        self,
        place: int,
        fn: Callable,
        args: tuple,
        src: int,
        event: SimEvent,
        clock: Optional[object] = None,
    ) -> None:
        if self.chaos is None and not self._is_genfunc(fn):
            self.engine.call_soon_call2(self._eval_here_plain, place, (fn, args, event, clock))
            return

        def runner():
            shifted = Activity(place, fn, args, self._ungoverned, name=f"at-eval@{place}")
            if self.race is not None:
                self.race.share(shifted, clock)
            ctx = ActivityContext(self, shifted)
            try:
                result = fn(ctx, *args)
                if inspect.isgenerator(result):
                    result = yield from result
            except GeneratorExit:
                raise  # killed place: the event stays unfired, like its host
            except BaseException as exc:
                event.fail(exc)
                return
            event.trigger(result)

        self._track_process(place, Process(self.engine, runner(), name=f"at-eval@{place}"))

    def _eval_here_plain(self, place: int, packed) -> None:
        """The scheduled step of a plain-function local eval (no chaos)."""
        fn, args, event, clock = packed
        shifted = Activity(place, fn, args, self._ungoverned, name=f"at-eval@{place}")
        if self.race is not None:
            self.race.share(shifted, clock)
        ctx = ActivityContext(self, shifted)
        try:
            result = fn(ctx, *args)
        except BaseException as exc:
            event.fail(exc)
            return
        if inspect.isgenerator(result):
            def drive():
                try:
                    value = yield from result
                except BaseException as exc:
                    event.fail(exc)
                    return
                event.trigger(value)

            Process(self.engine, drive(), name=f"at-eval@{place}")
            return
        event.trigger(result)

    def _send_reply(self, src: int, dst: int, reply_id: int, payload, is_error: bool) -> None:
        self.transport.post_args(
            src, dst, "apgas-reply", (reply_id, payload, is_error), estimate_nbytes(payload)
        )

    def _on_reply(self, dst: int, body) -> None:
        reply_id, payload, is_error = body
        entry = self._replies.pop(reply_id, None)
        if entry is None:
            return  # already failed by a place death; the late reply is moot
        event, _eval_place = entry
        if is_error:
            event.fail(payload)
        else:
            event.trigger(payload)

    # -- asynchronous bulk copies (Array.asyncCopy) ------------------------------------------

    def async_copy(self, here: int, src, dst, finish, nbytes: Optional[int] = None) -> None:
        """RDMA copy whose termination is tracked by ``finish`` like an async."""
        if self.rdma is None:
            raise ApgasError(
                f"transport {self.transport.name!r} has no RDMA; asyncCopy "
                "falls back to plain messages only on RDMA-capable fabrics"
            )
        if src.place != here:
            raise ApgasError(
                f"asyncCopy must be initiated where the source lives "
                f"(source at {src.place}, initiator at {here})"
            )
        size = nbytes if nbytes is not None else min(src.nbytes, dst.nbytes)
        finish.fork(here, dst.place)
        done = self.rdma.put(src.region, dst.region, size)
        if src.materialized and dst.materialized:
            n = min(len(src.data), len(dst.data))
            data = src.data[:n].copy()

            def land(_event):
                dst.data[:n] = data
                finish.join(dst.place)

            done.add_callback(land)
        else:
            done.add_callback(lambda _event: finish.join(dst.place))

    # -- place failure ----------------------------------------------------------------------

    def _on_place_death(self, place: int) -> None:
        """Chaos killed ``place``: its processes stop mid-instruction, the
        finishes it participated in fail (or forgive), and remote evaluations
        it was computing fail with a structured :class:`DeadPlaceError`."""
        for process in list(self._procs_at.get(place, ())):
            process.kill()
        self._procs_at.pop(place, None)
        for finish in list(self._finishes.values()):
            finish.notify_place_death(place)
        for reply_id, (event, eval_place) in list(self._replies.items()):
            if eval_place == place and not event.fired:
                del self._replies[reply_id]
                event.fail(DeadPlaceError(
                    place, detected_by=f"at({place})", detail="evaluating place failed"
                ))

    def revive_place(self, place: int) -> None:
        """Elastic recovery: respawn a failed place as a fresh, empty host.

        Models re-launching a process on a spare node under the same place
        id: the old :class:`PlaceRuntime` (activities, mailboxes, in-flight
        work) is gone for good and a blank one takes its slot, then chaos
        revive listeners (Teams, GLB topology, resilient stores) re-register
        the place.  Application state does NOT come back — that is the
        resilient store's job (:mod:`repro.resilient`).
        """
        if self.chaos is None:
            raise ApgasError("revive_place requires fault injection (chaos) enabled")
        if not self.chaos.is_dead(place):
            raise ApgasError(f"cannot revive place {place}: it is not dead")
        self.place(place)  # validate the id
        self._procs_at.pop(place, None)
        self._places[place] = PlaceRuntime(place, workers=self.workers_per_place)
        self.chaos.revive(place)

    # -- finish control traffic -------------------------------------------------------------

    def register_finish(self, finish: BaseFinish) -> None:
        self._finishes[finish.finish_id] = finish

    def send_finish_ctl(
        self, finish: BaseFinish, src: int, dst: int, nbytes: int, on_arrival: Callable[[], None]
    ) -> None:
        self.transport.post_args(src, dst, "apgas-finish", on_arrival, nbytes)

    def _on_finish_ctl(self, dst: int, body) -> None:
        body()

    # -- mailbox items ---------------------------------------------------------------------

    def send_item(
        self, src: int, dst: int, mailbox: str, item: Any, nbytes: Optional[int] = None
    ) -> None:
        size = nbytes if nbytes is not None else estimate_nbytes(item)
        self.transport.post_args(src, dst, "apgas-item", (mailbox, item), size)

    def _on_item(self, dst: int, body) -> None:
        mailbox, item = body
        self.place(dst).mailbox(mailbox).put(item)


class _UngovernedFinish:
    """Sentinel finish for shifted (`at`) evaluation bodies.

    An ``at`` does not create a new task — the current activity moves — so its
    body has no governing finish of its own.  Spawning an *ungoverned* async
    inside an ``at`` body without opening a finish scope is an error.
    """

    home = -1

    def __init__(self, rt: "ApgasRuntime") -> None:
        self.rt = rt

    def fork(self, src: int, dst: int) -> None:
        raise ApgasError(
            "cannot spawn an async inside an `at` body without opening a finish "
            "scope: wrap it in `with ctx.finish(...)`"
        )

    def join(self, place: int) -> None:  # pragma: no cover - defensive
        raise ApgasError("ungoverned finish cannot join")
