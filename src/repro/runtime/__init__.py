"""The APGAS runtime: places, activities, finish, teams, and allocators."""

from repro.runtime.activity import Activity, ActivityContext
from repro.runtime.broadcast import PlaceGroup, broadcast_spawn, sequential_spawn
from repro.runtime.clock import Clock
from repro.runtime.congruent import CongruentAllocator, CongruentArray
from repro.runtime.finish import Pragma, make_finish
from repro.runtime.finish.analysis import classify_function, suggest
from repro.runtime.globalref import Cell, GlobalRef
from repro.runtime.place import PlaceRuntime
from repro.runtime.runtime import ApgasRuntime, RuntimeStats
from repro.runtime.team import Team

__all__ = [
    "Activity",
    "ActivityContext",
    "ApgasRuntime",
    "Cell",
    "Clock",
    "CongruentAllocator",
    "CongruentArray",
    "GlobalRef",
    "PlaceGroup",
    "PlaceRuntime",
    "Pragma",
    "RuntimeStats",
    "Team",
    "broadcast_spawn",
    "classify_function",
    "make_finish",
    "sequential_spawn",
    "suggest",
]
