"""FINISH_ASYNC, FINISH_HERE, FINISH_LOCAL, FINISH_SPMD.

These four are *actual specializations* of the default algorithm (paper
Section 3.1): for FINISH_SPMD, the runtime knows it needs to wait for exactly
n count-only termination messages if n remote activities were spawned — the
order, source place, and content of each message are irrelevant — so no spawn
matrix is kept and messages shrink to a bare count.
"""

from __future__ import annotations

from repro.errors import PragmaError
from repro.runtime.finish.base import CTL_BYTES, BaseFinish
from repro.runtime.finish.pragmas import Pragma


class FinishAsync(BaseFinish):
    """A finish governing a single activity, possibly remote.

    E.g. ``finish at(p) async S;`` — the "put" idiom.
    """

    pragma = Pragma.FINISH_ASYNC

    def validate_fork(self, src: int, dst: int) -> None:
        if self.total_forks >= 1:
            raise PragmaError(
                f"{self.name}: FINISH_ASYNC governs a single activity, "
                "but a second one was spawned"
            )

    def on_join(self, place: int) -> None:
        if place == self.home:
            return
        self.report_pending()
        self.send_ctl(place, self.home, CTL_BYTES, self.report_arrived)


class FinishHere(BaseFinish):
    """A finish governing a round trip — the "get" idiom.

    E.g. ``h=here; finish at(p) async {S1; at(h) async S2;}``: one outgoing
    activity whose continuation comes back to the home place.
    """

    pragma = Pragma.FINISH_HERE

    def validate_fork(self, src: int, dst: int) -> None:
        if self.total_forks >= 2:
            raise PragmaError(
                f"{self.name}: FINISH_HERE governs a round trip (two activities)"
            )
        if self.total_forks == 1 and dst != self.home:
            raise PragmaError(
                f"{self.name}: FINISH_HERE's second activity must return to the "
                f"home place {self.home}, not {dst}"
            )

    def on_join(self, place: int) -> None:
        if place == self.home:
            # the return leg terminated at home: nothing to report; the
            # outbound leg's report below is the only control message
            return
        self.report_pending()
        self.send_ctl(place, self.home, CTL_BYTES, self.report_arrived)


class FinishLocal(BaseFinish):
    """A finish governing local activities only: a bare counter, no messages."""

    pragma = Pragma.FINISH_LOCAL

    def validate_fork(self, src: int, dst: int) -> None:
        if dst != self.home:
            raise PragmaError(
                f"{self.name}: FINISH_LOCAL cannot govern a remote activity "
                f"(spawn to place {dst}, home is {self.home})"
            )

    def on_join(self, place: int) -> None:
        pass  # purely local: quiescence is the counter hitting zero


class FinishSpmd(BaseFinish):
    """A finish governing remote activities that do not spawn subactivities
    outside a nested finish.

    E.g. ``finish for(p in places) at(p) async finish S;`` — the "root" finish
    of an SPMD computation.  Home waits for exactly one count-only message per
    remote activity.
    """

    pragma = Pragma.FINISH_SPMD

    def on_join(self, place: int) -> None:
        if place == self.home:
            return
        self.report_pending()
        self.send_ctl(place, self.home, CTL_BYTES, self.report_arrived)
