"""FINISH_DENSE: software-routed, coalesced termination detection.

For dense or irregular communication graphs the network stack has no
regularity to exploit, and optimizing each control message for latency is
wrong — only the *last* message matters.  FINISH_DENSE shapes the control
traffic into something idiomatic for the network: a termination report from
place ``p`` to home ``q`` is routed ``p -> p - p%b -> q - q%b -> q`` where
``b`` is the number of places per node (paper Section 3.1).  The first and
last hops ride shared memory within an octant; the per-node master places
coalesce reports into a single aggregated count per flush window, so the home
octant's network interface receives O(octants) messages instead of O(places).
"""

from __future__ import annotations

from repro.runtime.finish.base import CTL_BYTES, BaseFinish
from repro.runtime.finish.pragmas import Pragma


class _Router:
    """Coalescing state of one software-routing place (an octant master)."""

    __slots__ = ("place", "buffered", "flush_scheduled")

    def __init__(self, place: int) -> None:
        self.place = place
        self.buffered = 0
        self.flush_scheduled = False


class FinishDense(BaseFinish):
    pragma = Pragma.FINISH_DENSE

    def __init__(self, rt, home, name=""):
        super().__init__(rt, home, name)
        self._routers: dict[int, _Router] = {}
        topo = rt.topology
        self._home_master = topo.master_place_of(home)
        self._c_rerouted = rt.obs.metrics.counter("finish.dense.rerouted")
        #: place -> next hop; valid until a place dies (routes avoid the dead)
        self._hops: dict[int, int] = {}

    # -- routing --------------------------------------------------------------

    def notify_place_death(self, place: int) -> None:
        # unconditionally: even a momentarily-quiescent finish may route more
        # reports later, and those must not follow hops through the dead place
        self._hops.clear()
        super().notify_place_death(place)

    def _hop(self, place: int) -> int:
        hop = self._hops.get(place)
        if hop is None:
            hop = self._hops[place] = self._next_hop(place)
        return hop

    def _next_hop(self, place: int) -> int:
        """Next place on the p -> master(p) -> master(home) -> home route.

        A dead octant master is routed *around*: reports skip straight to the
        next hop toward home, trading coalescing for progress.  Reports the
        dead master already held in custody cannot be recovered this way —
        :meth:`holds_state_at` surfaces those to the failure handling.
        """
        topo = self.rt.topology
        if place == self.home:
            raise AssertionError("no hop needed from home")
        if place == self._home_master or topo.octant_of(place) == topo.octant_of(self.home):
            return self.home
        dead = self.rt.is_dead
        toward_home = self.home if dead(self._home_master) else self._home_master
        master = topo.master_place_of(place)
        if place == master:
            return toward_home
        if dead(master):
            self._c_rerouted.inc()
            return toward_home
        return master

    def on_join(self, place: int) -> None:
        if place == self.home:
            return
        self.report_pending()
        self._forward(place, count=1)

    def _forward(self, place: int, count: int) -> None:
        """Send ``count`` termination reports one hop toward home."""
        nxt = self._hop(place)
        nbytes = CTL_BYTES  # a coalesced count is still one small message

        def on_arrival():
            if nxt == self.home:
                self.report_arrived(count)
            else:
                self._buffer(nxt, count)

        self.send_ctl(place, nxt, nbytes, on_arrival, reports=count)

    def _buffer(self, router_place: int, count: int) -> None:
        """Coalesce reports at a routing place; flush after a short window."""
        router = self._routers.get(router_place)
        if router is None:
            router = self._routers[router_place] = _Router(router_place)
        router.buffered += count
        if not router.flush_scheduled:
            router.flush_scheduled = True
            self.rt.engine.schedule_call(self.COALESCE_WINDOW, self._flush, router)

    def _flush(self, router: _Router) -> None:
        router.flush_scheduled = False
        count, router.buffered = router.buffered, 0
        if count and self.failed is None:
            self._forward(router.place, count)

    # -- place failure ---------------------------------------------------------

    def holds_state_at(self, place: int) -> int:
        """Reports sitting in a routing place's coalescing buffer are lost
        with the place; hand them to the base class and zero the buffer."""
        router = self._routers.get(place)
        if router is None:
            return 0
        count, router.buffered = router.buffered, 0
        return count
