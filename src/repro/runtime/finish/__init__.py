"""Scalable ``finish``: the default protocol and its five specializations."""

from repro.runtime.finish.base import BaseFinish, CTL_BYTES
from repro.runtime.finish.default import DefaultFinish
from repro.runtime.finish.dense import FinishDense
from repro.runtime.finish.pragmas import Pragma
from repro.runtime.finish.specialized import FinishAsync, FinishHere, FinishLocal, FinishSpmd

_IMPLEMENTATIONS = {
    Pragma.DEFAULT: DefaultFinish,
    Pragma.FINISH_ASYNC: FinishAsync,
    Pragma.FINISH_HERE: FinishHere,
    Pragma.FINISH_LOCAL: FinishLocal,
    Pragma.FINISH_SPMD: FinishSpmd,
    Pragma.FINISH_DENSE: FinishDense,
}


def make_finish(rt, home: int, pragma: Pragma = Pragma.DEFAULT, name: str = "") -> BaseFinish:
    """Instantiate the finish implementation selected by ``pragma``."""
    return _IMPLEMENTATIONS[pragma](rt, home, name)


__all__ = [
    "BaseFinish",
    "CTL_BYTES",
    "DefaultFinish",
    "FinishAsync",
    "FinishHere",
    "FinishLocal",
    "FinishSpmd",
    "FinishDense",
    "Pragma",
    "make_finish",
]
