"""The general task-balancing algorithm: X10's default distributed finish.

Handles arbitrary patterns of distributed task creation and termination, at a
price: the home place accumulates a matrix of (source, destination) spawn
counts — O(n^2) space in the number of places involved — and every remotely
terminating task causes a control message carrying its place's compressed
transition vector to be sent *directly to the home place*, which may flood the
home's network interface (paper Section 3.1).
"""

from __future__ import annotations

from repro.runtime.finish.base import CTL_BYTES, BaseFinish
from repro.runtime.finish.pragmas import Pragma


class DefaultFinish(BaseFinish):
    pragma = Pragma.DEFAULT

    def __init__(self, rt, home, name=""):
        super().__init__(rt, home, name)
        #: per-place set of destinations spawned to since the last report;
        #: its size determines the compressed control-message payload
        self._dirty_dsts: dict[int, set[int]] = {}
        #: distinct (src, dst) pairs the home has learned about — the O(n^2)
        #: state of the paper
        self._home_matrix: set[tuple[int, int]] = set()

    def on_fork(self, src: int, dst: int) -> None:
        if src == self.home:
            # the home place's transition counts are home-resident state
            self._home_matrix.add((src, dst))
            self.home_space_bytes = 8 * len(self._home_matrix)
        else:
            self._dirty_dsts.setdefault(src, set()).add(dst)

    def on_join(self, place: int) -> None:
        dirty = self._dirty_dsts.pop(place, set())
        for dst in dirty:
            if (place, dst) not in self._home_matrix:
                self._home_matrix.add((place, dst))
        self.home_space_bytes = 8 * len(self._home_matrix)
        if place == self.home:
            return  # local termination: no network traffic
        # one message per remote termination, straight to home, carrying the
        # place's compressed transition vector
        nbytes = CTL_BYTES + 8 * max(1, len(dirty))
        self.report_pending()
        self.send_ctl(place, self.home, nbytes, self.report_arrived)
