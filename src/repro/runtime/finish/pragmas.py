"""Finish pragmas: the five specialized termination-detection patterns.

The runtime provides implementations of distributed ``finish`` that are
specialized to common patterns of distributed concurrency (paper Section 3.1).
Opportunities to apply them are guided by programmer-supplied annotations —
pragmas — exactly as in the paper's current system (the prototype compiler
analysis lives in :mod:`repro.runtime.finish.analysis`).
"""

from __future__ import annotations

import enum


class Pragma(enum.Enum):
    """Which termination-detection algorithm a ``finish`` should use."""

    #: the general task-balancing algorithm: handles arbitrary nesting, but
    #: uses O(n^2) space at the finish home and sends one control message per
    #: remotely terminating task directly to the home place
    DEFAULT = "default"

    #: a finish governing a single activity, possibly remote
    FINISH_ASYNC = "finish_async"

    #: a finish governing a round trip (a "get")
    FINISH_HERE = "finish_here"

    #: a finish governing only local activities
    FINISH_LOCAL = "finish_local"

    #: a finish governing one remote activity per place that does not spawn
    #: subactivities outside a nested finish
    FINISH_SPMD = "finish_spmd"

    #: a finish governing activities with dense or irregular communication
    #: graphs; control traffic is software-routed through per-node master
    #: places and coalesced
    FINISH_DENSE = "finish_dense"
