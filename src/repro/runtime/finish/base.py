"""Distributed termination detection: the machinery shared by all protocols.

A ``finish`` must detect when every activity transitively spawned in its scope
has terminated.  The simulator keeps *exact* fork/join counters (the oracle —
bookkeeping is free in Python), but a finish only *declares* quiescence once
the control messages its protocol would really send have all arrived at the
finish home through the simulated network.  Protocols therefore differ in
observable cost — message count, message size, who gets flooded, home-side
state — which is precisely what the paper's Section 3.1 is about.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import DeadPlaceError, FinishError
from repro.runtime.finish.pragmas import Pragma
from repro.sim.events import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import ApgasRuntime

#: envelope of a count-only termination message
CTL_BYTES = 16


class _CtlMsg:
    """One in-flight control message, for death accounting."""

    __slots__ = ("src", "dst", "reports")

    def __init__(self, src: int, dst: int, reports: int) -> None:
        self.src = src
        self.dst = dst
        self.reports = reports


class BaseFinish:
    """Common fork/join accounting and control-message plumbing.

    Subclasses override :meth:`on_fork` / :meth:`on_join` to implement their
    control-message behavior, and may override :meth:`validate_fork` to reject
    concurrency patterns the pragma cannot govern.
    """

    pragma = Pragma.DEFAULT

    #: how long a software router buffers reports before forwarding
    COALESCE_WINDOW = 10e-6

    #: survive participant deaths by writing off the dead place's activities
    #: and lost reports instead of failing (resilient-finish adoption; GLB
    #: turns this on so the surviving places can drain the remaining work)
    tolerate_death = False

    def __init__(self, rt: "ApgasRuntime", home: int, name: str = "") -> None:
        self.rt = rt
        self.home = home
        # ids are per-runtime so two identical runs export identical traces
        self.finish_id = next(rt._finish_ids)
        self.name = name or f"{self.pragma.value}#{self.finish_id}"
        #: forks minus joins (exact oracle)
        self.pending = 0
        self.total_forks = 0
        #: joins of activities at places other than home (the terminations
        #: whose reports must cross the network; drives the audit closed forms)
        self.remote_joins = 0
        #: joins whose termination report has not yet reached the home place
        self._unreported = 0
        self._waiters: list[SimEvent] = []
        #: the structured failure, once a participant place died
        self.failed: Optional[DeadPlaceError] = None
        #: not-yet-joined activities by place (death detection)
        self._live_at: dict[int, int] = {}
        #: control messages still in flight (death detection / write-off)
        self._ctl_inflight: set[_CtlMsg] = set()
        #: spawn messages still in flight (a sender dying with one loses it)
        self._spawn_inflight: set[_CtlMsg] = set()
        #: control messages / bytes this finish caused (diagnostics + tests)
        self.ctl_messages = 0
        self.ctl_bytes = 0
        #: bytes of protocol state held at the home place (diagnostics)
        self.home_space_bytes = 0
        metrics = rt.obs.metrics
        self._m_on = metrics.enabled
        #: death accounting (tokens, live-activity census) only matters when
        #: fault injection can kill a place; without chaos it is pure overhead
        self._track_live = rt.chaos is not None
        #: virtual-dispatch guards: most protocols leave these hooks as the
        #: base no-ops, and the fork path is hot enough that the call shows
        self._has_validate = type(self).validate_fork is not BaseFinish.validate_fork
        self._has_on_fork = type(self).on_fork is not BaseFinish.on_fork
        metrics.counter("finish.opened", pragma=self.pragma.value).inc()
        self._c_ctl_messages = metrics.counter("finish.ctl_messages", pragma=self.pragma.value)
        self._c_ctl_bytes = metrics.counter("finish.ctl_bytes", pragma=self.pragma.value)
        self._tracer = rt.obs.trace
        self._trace_closed = False
        if self._tracer.enabled:
            self._tracer.span_begin(
                self.name, "finish", home, rt.engine.now,
                id=self.finish_id, pragma=self.pragma.value, home=home,
            )
        rt.register_finish(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name} pending={self.pending} "
            f"unreported={self._unreported}>"
        )

    # -- the three protocol events ------------------------------------------------

    def fork(self, src: int, dst: int) -> None:
        """An activity governed by this finish is being spawned src -> dst."""
        if self.failed is not None:
            raise self.failed
        if self._has_validate:
            self.validate_fork(src, dst)
        self.pending += 1
        self.total_forks += 1
        if self._track_live:
            self._live_at[dst] = self._live_at.get(dst, 0) + 1
        if self._has_on_fork:
            self.on_fork(src, dst)

    def join(self, place: int) -> None:
        """An activity governed by this finish terminated at ``place``."""
        if self.failed is not None:
            # a straggler surviving the failure; keep the books sane, send
            # nothing — the waiters already hold the DeadPlaceError
            if self.pending > 0:
                self.pending -= 1
            if self._track_live:
                self._drop_live(place)
            return
        if self.pending <= 0:
            raise FinishError(f"{self.name}: join without a matching fork")
        self.pending -= 1
        if self._track_live:
            self._drop_live(place)
        if place != self.home:
            self.remote_joins += 1
        self.on_join(place)
        self._check()

    def wait(self) -> SimEvent:
        """Event that fires when this finish is quiescent — or fails with
        :class:`~repro.errors.DeadPlaceError` if a participant place died."""
        event = SimEvent(name=f"{self.name}.wait")
        if self.failed is not None:
            event.fail(self.failed)
        elif self.quiescent:
            event.trigger()
        else:
            self._waiters.append(event)
        race = self.rt.race
        if race is not None:
            # joined children's clocks flow into the waiting opener once the
            # scope quiesces (the happens-before edge `finish` establishes)
            race.on_wait(self, event)
        return event

    @property
    def quiescent(self) -> bool:
        return self.failed is None and self.pending == 0 and self._unreported == 0

    def _drop_live(self, place: int) -> None:
        n = self._live_at.get(place, 0)
        if n <= 1:
            self._live_at.pop(place, None)
        else:
            self._live_at[place] = n - 1

    # -- protocol hooks ----------------------------------------------------------

    def validate_fork(self, src: int, dst: int) -> None:
        """Reject forks the pragma's pattern cannot govern."""

    def on_fork(self, src: int, dst: int) -> None:
        """Protocol bookkeeping at spawn time (no message: bookkeeping rides
        inside the spawn message itself)."""

    def on_join(self, place: int) -> None:
        """Send whatever termination reports the protocol requires."""
        raise NotImplementedError

    def holds_state_at(self, place: int) -> int:
        """Reports parked in protocol state at ``place`` (e.g. a coalescing
        router's buffer).  Overridden by protocols that route through
        intermediaries; the count is *removed* from the protocol's books by
        the caller, so implementations must zero their own copy."""
        return 0

    def on_place_death(self, place: int) -> None:
        """Protocol hook at place-death time (before involvement is judged)."""

    # -- shared plumbing ------------------------------------------------------------

    def _check(self) -> None:
        if not self.quiescent:
            return
        tracer = self._tracer
        if tracer.enabled:
            now = self.rt.engine.now
            # a summary per quiescence transition; the auditor uses the last
            tracer.instant(
                "finish.quiesce", "finish", self.home, now,
                id=self.finish_id,
                pragma=self.pragma.value,
                home=self.home,
                total_forks=self.total_forks,
                remote_joins=self.remote_joins,
                ctl_messages=self.ctl_messages,
                ctl_bytes=self.ctl_bytes,
            )
            if not self._trace_closed:
                self._trace_closed = True
                tracer.span_end(self.name, "finish", self.home, now, id=self.finish_id)
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for event in waiters:
                event.trigger()

    def report_pending(self, count: int = 1) -> None:
        """Mark ``count`` joins as awaiting delivery of their report at home."""
        self._unreported += count

    def report_arrived(self, count: int = 1) -> None:
        if self.failed is not None:
            return
        if count > self._unreported:
            raise FinishError(f"{self.name}: more reports arrived than sent")
        self._unreported -= count
        self._check()

    def send_ctl(self, src: int, dst: int, nbytes: int, on_arrival, reports: int = 1) -> None:
        """Route one protocol control message through the simulated network.

        ``reports`` is how many termination reports the message carries (>1
        for coalesced protocols); a place failure writes off the in-flight
        messages touching it by exactly that many reports.
        """
        self.ctl_messages += 1
        self.ctl_bytes += nbytes
        if self._m_on:
            self._c_ctl_messages.value += 1
            self._c_ctl_bytes.value += nbytes
        tracer = self._tracer
        if tracer.enabled:
            tracer.instant(
                "finish.ctl", "finish", src, self.rt.engine.now,
                id=self.finish_id, src=src, dst=dst, nbytes=nbytes, pragma=self.pragma.value,
            )
        if self.rt.chaos is None:
            # reliable fabric: no message can be lost or written off, so the
            # in-flight token and its arrival wrapper are pure overhead
            self.rt.send_finish_ctl(self, src, dst, nbytes, on_arrival)
            return
        token = _CtlMsg(src, dst, reports)
        self._ctl_inflight.add(token)

        def arrived() -> None:
            if token not in self._ctl_inflight:
                return  # written off when a place died; its count is settled
            self._ctl_inflight.discard(token)
            on_arrival()

        self.rt.send_finish_ctl(self, src, dst, nbytes, arrived)

    def spawn_departed(self, src: int, dst: int) -> Optional[_CtlMsg]:
        """A remote spawn left ``src``; the token rides in the message.

        On a reliable fabric no spawn can be written off, so no token is
        tracked at all (``None`` rides in the message instead).
        """
        if self.rt.chaos is None:
            return None
        token = _CtlMsg(src, dst, 1)
        self._spawn_inflight.add(token)
        return token

    def spawn_landed(self, token: Optional[_CtlMsg]) -> bool:
        """The spawn message arrived.  False means it was written off when a
        place died (or the finish failed) — the activity must not start,
        because its fork has already been settled."""
        if self.failed is not None:
            return False
        if token is None:
            return True
        if token not in self._spawn_inflight:
            return False
        self._spawn_inflight.discard(token)
        return True

    # -- place failure -------------------------------------------------------------

    def notify_place_death(self, place: int) -> None:
        """A place died.  If this finish has a stake there — live activities,
        in-flight control messages, parked reports, or its home — it either
        fails with a structured :class:`~repro.errors.DeadPlaceError` or, when
        :attr:`tolerate_death` is set, writes the dead place's contribution
        off and carries on with the survivors."""
        if self.failed is not None or self.quiescent:
            return
        self.on_place_death(place)
        if place == self.home:
            self._fail(DeadPlaceError(place, detected_by=self.name, detail="finish home failed"))
            return
        lost_msgs = [t for t in self._ctl_inflight if t.src == place or t.dst == place]
        lost_spawns = [t for t in self._spawn_inflight if t.src == place or t.dst == place]
        lost_live = self._live_at.get(place, 0)
        lost_reports = sum(t.reports for t in lost_msgs) + self.holds_state_at(place)
        if not lost_live and not lost_reports and not lost_spawns:
            return
        if not self.tolerate_death:
            self._fail(DeadPlaceError(
                place,
                detected_by=self.name,
                detail=f"{lost_live} live activities, {lost_reports} unreported terminations lost",
            ))
            return
        # adoption: the dead place's activities and lost reports are settled
        for token in lost_msgs:
            self._ctl_inflight.discard(token)
        for token in lost_spawns:
            self._spawn_inflight.discard(token)
            if token.dst != place:
                # the spawn left a now-dead sender and will never start its
                # activity at the (live) destination; settle its fork here
                self.pending -= 1
                self._drop_live(token.dst)
        self._live_at.pop(place, None)
        self.pending -= lost_live
        self._unreported -= lost_reports
        self.rt.obs.metrics.counter("finish.forgiven", pragma=self.pragma.value).inc(
            lost_live + lost_reports + len(lost_spawns)
        )
        # one adoption event per tolerated death (forgiven counts the pieces)
        self.rt.obs.metrics.counter(
            "finish.deaths_tolerated", pragma=self.pragma.value
        ).inc()
        if self._tracer.enabled:
            self._tracer.instant(
                "finish.forgive", "finish", self.home, self.rt.engine.now,
                id=self.finish_id, pragma=self.pragma.value, dead=place,
                live=lost_live, reports=lost_reports,
            )
        self._check()

    def _fail(self, exc: DeadPlaceError) -> None:
        self.failed = exc
        self.rt.obs.metrics.counter("finish.failed", pragma=self.pragma.value).inc()
        tracer = self._tracer
        if tracer.enabled:
            now = self.rt.engine.now
            tracer.instant(
                "finish.dead_place", "finish", self.home, now,
                id=self.finish_id, pragma=self.pragma.value, dead=exc.place,
                detail=exc.detail,
            )
            if not self._trace_closed:
                self._trace_closed = True
                tracer.span_end(self.name, "finish", self.home, now, id=self.finish_id)
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for event in waiters:
                event.fail(exc)
