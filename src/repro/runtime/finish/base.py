"""Distributed termination detection: the machinery shared by all protocols.

A ``finish`` must detect when every activity transitively spawned in its scope
has terminated.  The simulator keeps *exact* fork/join counters (the oracle —
bookkeeping is free in Python), but a finish only *declares* quiescence once
the control messages its protocol would really send have all arrived at the
finish home through the simulated network.  Protocols therefore differ in
observable cost — message count, message size, who gets flooded, home-side
state — which is precisely what the paper's Section 3.1 is about.
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Optional

from repro.errors import FinishError
from repro.runtime.finish.pragmas import Pragma
from repro.sim.events import SimEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.runtime import ApgasRuntime

_finish_ids = itertools.count(1)

#: envelope of a count-only termination message
CTL_BYTES = 16


class BaseFinish:
    """Common fork/join accounting and control-message plumbing.

    Subclasses override :meth:`on_fork` / :meth:`on_join` to implement their
    control-message behavior, and may override :meth:`validate_fork` to reject
    concurrency patterns the pragma cannot govern.
    """

    pragma = Pragma.DEFAULT

    #: how long a software router buffers reports before forwarding
    COALESCE_WINDOW = 10e-6

    def __init__(self, rt: "ApgasRuntime", home: int, name: str = "") -> None:
        self.rt = rt
        self.home = home
        self.finish_id = next(_finish_ids)
        self.name = name or f"{self.pragma.value}#{self.finish_id}"
        #: forks minus joins (exact oracle)
        self.pending = 0
        self.total_forks = 0
        #: joins of activities at places other than home (the terminations
        #: whose reports must cross the network; drives the audit closed forms)
        self.remote_joins = 0
        #: joins whose termination report has not yet reached the home place
        self._unreported = 0
        self._waiters: list[SimEvent] = []
        #: control messages / bytes this finish caused (diagnostics + tests)
        self.ctl_messages = 0
        self.ctl_bytes = 0
        #: bytes of protocol state held at the home place (diagnostics)
        self.home_space_bytes = 0
        metrics = rt.obs.metrics
        metrics.counter("finish.opened", pragma=self.pragma.value).inc()
        self._c_ctl_messages = metrics.counter("finish.ctl_messages", pragma=self.pragma.value)
        self._c_ctl_bytes = metrics.counter("finish.ctl_bytes", pragma=self.pragma.value)
        self._tracer = rt.obs.trace
        self._trace_closed = False
        if self._tracer.enabled:
            self._tracer.span_begin(
                self.name, "finish", home, rt.engine.now,
                id=self.finish_id, pragma=self.pragma.value, home=home,
            )
        rt.register_finish(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<{type(self).__name__} {self.name} pending={self.pending} "
            f"unreported={self._unreported}>"
        )

    # -- the three protocol events ------------------------------------------------

    def fork(self, src: int, dst: int) -> None:
        """An activity governed by this finish is being spawned src -> dst."""
        self.validate_fork(src, dst)
        self.pending += 1
        self.total_forks += 1
        self.on_fork(src, dst)

    def join(self, place: int) -> None:
        """An activity governed by this finish terminated at ``place``."""
        if self.pending <= 0:
            raise FinishError(f"{self.name}: join without a matching fork")
        self.pending -= 1
        if place != self.home:
            self.remote_joins += 1
        self.on_join(place)
        self._check()

    def wait(self) -> SimEvent:
        """Event that fires when this finish is quiescent."""
        event = SimEvent(name=f"{self.name}.wait")
        if self.quiescent:
            event.trigger()
        else:
            self._waiters.append(event)
        return event

    @property
    def quiescent(self) -> bool:
        return self.pending == 0 and self._unreported == 0

    # -- protocol hooks ----------------------------------------------------------

    def validate_fork(self, src: int, dst: int) -> None:
        """Reject forks the pragma's pattern cannot govern."""

    def on_fork(self, src: int, dst: int) -> None:
        """Protocol bookkeeping at spawn time (no message: bookkeeping rides
        inside the spawn message itself)."""

    def on_join(self, place: int) -> None:
        """Send whatever termination reports the protocol requires."""
        raise NotImplementedError

    # -- shared plumbing ------------------------------------------------------------

    def _check(self) -> None:
        if not self.quiescent:
            return
        tracer = self._tracer
        if tracer.enabled:
            now = self.rt.engine.now
            # a summary per quiescence transition; the auditor uses the last
            tracer.instant(
                "finish.quiesce", "finish", self.home, now,
                id=self.finish_id,
                pragma=self.pragma.value,
                home=self.home,
                total_forks=self.total_forks,
                remote_joins=self.remote_joins,
                ctl_messages=self.ctl_messages,
                ctl_bytes=self.ctl_bytes,
            )
            if not self._trace_closed:
                self._trace_closed = True
                tracer.span_end(self.name, "finish", self.home, now, id=self.finish_id)
        if self._waiters:
            waiters, self._waiters = self._waiters, []
            for event in waiters:
                event.trigger()

    def report_pending(self, count: int = 1) -> None:
        """Mark ``count`` joins as awaiting delivery of their report at home."""
        self._unreported += count

    def report_arrived(self, count: int = 1) -> None:
        if count > self._unreported:
            raise FinishError(f"{self.name}: more reports arrived than sent")
        self._unreported -= count
        self._check()

    def send_ctl(self, src: int, dst: int, nbytes: int, on_arrival) -> None:
        """Route one protocol control message through the simulated network."""
        self.ctl_messages += 1
        self.ctl_bytes += nbytes
        self._c_ctl_messages.inc()
        self._c_ctl_bytes.inc(nbytes)
        tracer = self._tracer
        if tracer.enabled:
            tracer.instant(
                "finish.ctl", "finish", src, self.rt.engine.now,
                id=self.finish_id, src=src, dst=dst, nbytes=nbytes, pragma=self.pragma.value,
            )
        self.rt.send_finish_ctl(self, src, dst, nbytes, on_arrival)
