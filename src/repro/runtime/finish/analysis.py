"""Prototype compiler analysis for finish-implementation selection.

The paper prototyped a fully automatic compiler analysis capable of detecting
many situations where the specialized finish patterns apply (it correctly
classifies the finishes in their HPL code into FINISH_SPMD, FINISH_ASYNC, and
FINISH_HERE), while the production system still relies on pragmas.  This
module is the same kind of prototype for our Python surface: it inspects an
activity body's AST and suggests a pragma for each ``with ctx.finish(...)``
site.  Unrecognized patterns fall back to the DEFAULT algorithm, which is
always correct.

Known limitation (the reason it remains a prototype, exactly as in the
paper): the analysis is intraprocedural, so a spawned body that itself
spawns — e.g. the return leg of a FINISH_HERE round trip — is invisible.  A
mis-suggested pragma is never silently wrong, though: every specialized
finish validates the forks it governs at runtime and raises
:class:`~repro.errors.PragmaError` on a pattern violation.
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from typing import Callable, Optional

from repro.runtime.finish.pragmas import Pragma


@dataclass(frozen=True)
class FinishSite:
    """One ``with ctx.finish(...)`` occurrence and its suggested implementation."""

    lineno: int
    suggestion: Pragma
    reason: str


def classify_function(fn: Callable) -> list[FinishSite]:
    """Suggest a finish implementation for every finish site in ``fn``.

    Returns an empty list when the source is unavailable (builtins, lambdas
    defined in a REPL) — the caller falls back to pragmas or DEFAULT.
    """
    try:
        source = textwrap.dedent(inspect.getsource(fn))
        tree = ast.parse(source)
    except (OSError, TypeError, SyntaxError):
        return []
    sites: list[FinishSite] = []
    for node in ast.walk(tree):
        if isinstance(node, ast.With):
            for item in node.items:
                if _is_finish_call(item.context_expr):
                    sites.append(_classify_site(node))
    return sites


def suggest(fn: Callable) -> Optional[Pragma]:
    """The suggestion for the first finish site of ``fn``, or None."""
    sites = classify_function(fn)
    return sites[0].suggestion if sites else None


# -- the pattern rules ------------------------------------------------------------


def _classify_site(with_node: ast.With) -> FinishSite:
    body = with_node.body
    spawns = _count_calls(body, "at_async")
    local_spawns = _count_calls(body, "async_")
    loops = _loops_containing_spawn(body)

    if spawns == 0 and local_spawns > 0:
        return FinishSite(with_node.lineno, Pragma.FINISH_LOCAL, "only local asyncs")
    if spawns == 1 and local_spawns == 0 and not loops:
        return FinishSite(with_node.lineno, Pragma.FINISH_ASYNC, "a single remote async")
    if loops:
        depth = max(loops)
        if depth >= 2:
            return FinishSite(
                with_node.lineno,
                Pragma.FINISH_DENSE,
                "remote asyncs inside nested place loops (dense communication graph)",
            )
        return FinishSite(
            with_node.lineno, Pragma.FINISH_SPMD, "one remote async per place in a loop"
        )
    return FinishSite(with_node.lineno, Pragma.DEFAULT, "pattern not recognized")


def _is_finish_call(expr: ast.expr) -> bool:
    return (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == "finish"
    )


def _count_calls(body: list[ast.stmt], method: str) -> int:
    count = 0
    for stmt in body:
        for node in ast.walk(stmt):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == method
            ):
                count += 1
    return count


def _loops_containing_spawn(body: list[ast.stmt]) -> list[int]:
    """Nesting depths of loops that contain an ``at_async`` call."""
    depths: list[int] = []

    def visit(node: ast.AST, depth: int) -> None:
        if isinstance(node, (ast.For, ast.While)):
            depth += 1
            if _count_calls([node], "at_async") > 0:  # type: ignore[list-item]
                depths.append(depth)
        elif isinstance(node, ast.With) and any(
            _is_finish_call(i.context_expr) for i in node.items
        ):
            return  # nested finish sites are classified separately
        for child in ast.iter_child_nodes(node):
            visit(child, depth)

    for stmt in body:
        visit(stmt, 0)
    return depths
