"""Compiler analysis for finish-implementation selection.

The paper prototyped a fully automatic compiler analysis capable of detecting
many situations where the specialized finish patterns apply (it correctly
classifies the finishes in their HPL code into FINISH_SPMD, FINISH_ASYNC, and
FINISH_HERE), while the production system still relies on pragmas.  This
module is the runtime-facing entry point to our version of that analysis:
given a live function object, it locates the source and delegates to the
whole-program analyzer in :mod:`repro.analyze`, whose inference is
*interprocedural* — it follows ``at_async`` / ``async_`` bodies across
function boundaries, so the return leg of a FINISH_HERE round trip (invisible
to the old intraprocedural prototype) is classified correctly.

A mis-suggested pragma is never silently wrong: every specialized finish
validates the forks it governs at runtime and raises
:class:`~repro.errors.PragmaError` on a pattern violation, and
:mod:`repro.analyze.agreement` replays suggestions against exactly that
validation.
"""

from __future__ import annotations

import inspect
import os
import textwrap
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import AnalyzeError
from repro.runtime.finish.pragmas import Pragma


@dataclass(frozen=True)
class FinishSite:
    """One ``with ctx.finish(...)`` occurrence and its suggested implementation."""

    lineno: int
    suggestion: Pragma
    reason: str
    confident: bool = True


def classify_function(fn: Callable) -> list[FinishSite]:
    """Suggest a finish implementation for every finish site in ``fn``.

    Sites inside functions nested in ``fn`` are included.  Line numbers are
    absolute within ``fn``'s source file when it has one (matching what
    ``repro analyze`` reports), else relative to the function's own source.
    Returns an empty list when no source is available (builtins) — callers
    fall back to pragmas or DEFAULT.
    """
    sites = _classify_via_file(fn)
    if sites is not None:
        return sites
    return _classify_via_source(fn)


def suggest(fn: Callable) -> dict[int, Pragma]:
    """Per-site suggestions for ``fn``, keyed by line number.

    Empty when ``fn`` has no analyzable finish sites.
    """
    return {site.lineno: site.suggestion for site in classify_function(fn)}


# -- locating the function in the whole-program model ----------------------------


def _classify_scopes(program, target) -> list[FinishSite]:
    from repro.analyze.infer import Inference

    scopes = [target]
    queue = [target]
    while queue:
        scope = queue.pop()
        for child in scope.functions.values():
            if child.kind in ("function", "lambda"):
                scopes.append(child)
            queue.append(child)
    inference = Inference(program)
    out: list[FinishSite] = []
    for scope in scopes:
        for c in inference.classify_scope(scope):
            out.append(FinishSite(c.lineno, c.suggestion, c.reason, c.confident))
    out.sort(key=lambda s: s.lineno)
    return out


def _find_scope(program, module, firstline: int):
    """The function scope whose def (or first decorator) is at ``firstline``."""
    from repro.analyze.infer import iter_function_scopes

    for scope in iter_function_scopes(program, module):
        node = scope.node
        linenos = {node.lineno}
        for dec in getattr(node, "decorator_list", []):
            linenos.add(dec.lineno)
        if firstline in linenos:
            return scope
    return None


def _classify_via_file(fn: Callable) -> Optional[list[FinishSite]]:
    from repro.analyze.sourcemodel import Program

    try:
        path = inspect.getsourcefile(fn)
        firstline = fn.__code__.co_firstlineno
    except (TypeError, AttributeError):
        return None
    if not path or not os.path.exists(path):
        return None
    program = Program()
    try:
        module = program.add_file(path)
    except AnalyzeError:
        return None
    target = _find_scope(program, module, firstline)
    if target is None:
        return None
    return _classify_scopes(program, target)


def _classify_via_source(fn: Callable) -> list[FinishSite]:
    """Fallback for functions without a resolvable file (REPL, exec'd code):
    analyze the dedented source in isolation.  Still interprocedural within
    the function — nested helper bodies are followed — but module-level
    helpers are out of sight here."""
    from repro.analyze.sourcemodel import Program

    try:
        source = textwrap.dedent(inspect.getsource(fn))
    except (OSError, TypeError):
        return []
    program = Program()
    try:
        module = program.add_source("<analysis>", source)
    except AnalyzeError:
        return []
    mscope = program.module_scope[module.path]
    funcs = [s for s in mscope.functions.values() if s.kind == "function"]
    if not funcs:
        return []
    return _classify_scopes(program, funcs[0])
