"""Command-line interface for the reproduction harness.

::

    python -m repro.cli kernels                      # list kernels
    python -m repro.cli run uts --places 64          # one simulated run
    python -m repro.cli run uts --places 64 --stats  # ... plus the metrics snapshot
    python -m repro.cli run uts --places 32 --chaos "seed=7,drop=0.05"   # fault injection
    python -m repro.cli trace uts --places 32        # traced run + protocol audit
    python -m repro.cli figure stream               # one Figure 1 panel
    python -m repro.cli tables                      # Tables 1 and 2
    python -m repro.cli report                      # the whole EXPERIMENTS body
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import DeadPlaceError
from repro.harness.figures import figure1_panel, render_panel
from repro.harness.reporting import si
from repro.harness.runner import KERNELS, simulate
from repro.harness.tables import render_table1, render_table2, table1, table2
from repro.obs import audit_trace


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (kernels / run / figure / tables / report)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'X10 and APGAS at Petascale' (PPoPP 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels", help="list the eight kernels")

    chaos_help = (
        "fault-injection spec, e.g. 'seed=7,drop=0.05,dup=0.02,delay=0.1:2e-5,kill=5@1e-3'; "
        "switches the transport into resilient (ack/retry) mode"
    )

    run = sub.add_parser("run", help="simulate one kernel at one scale")
    run.add_argument("kernel", choices=KERNELS)
    run.add_argument("--places", type=int, default=32)
    run.add_argument(
        "--stats", action="store_true", help="print the metrics snapshot after the result"
    )
    run.add_argument("--chaos", default=None, metavar="SPEC", help=chaos_help)

    trace = sub.add_parser("trace", help="run one kernel with event tracing and audit the trace")
    trace.add_argument("kernel", choices=KERNELS)
    trace.add_argument("--places", type=int, default=32)
    trace.add_argument("--chaos", default=None, metavar="SPEC", help=chaos_help)
    trace.add_argument("--out", default=None, help="trace output path (default trace_<kernel>_<places>)")
    trace.add_argument(
        "--format",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="chrome trace_event JSON (default) or one event per line",
    )
    trace.add_argument("--no-audit", action="store_true", help="skip the protocol audit")

    fig = sub.add_parser("figure", help="regenerate one Figure 1 panel")
    fig.add_argument("kernel", choices=KERNELS)
    fig.add_argument("--no-sim", action="store_true", help="model rows only (fast)")

    sub.add_parser("tables", help="regenerate Tables 1 and 2")
    sub.add_parser("report", help="regenerate the full EXPERIMENTS body")
    return parser


def main(argv=None, out=sys.stdout) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "kernels":
        for k in KERNELS:
            print(k, file=out)
        return 0

    if args.command == "run":
        try:
            result = simulate(args.kernel, args.places, chaos=args.chaos)
        except DeadPlaceError as exc:
            print(f"kernel        : {args.kernel}", file=out)
            print(f"places        : {args.places}", file=out)
            print(f"failed        : {exc}", file=out)
            return 1
        print(f"kernel        : {result.kernel}", file=out)
        print(f"places        : {result.places}", file=out)
        print(f"simulated time: {result.sim_time:.6f} s", file=out)
        print(f"aggregate     : {si(result.value, result.unit)}", file=out)
        per = si(result.per_core, result.unit)
        print(f"per core/host : {per}", file=out)
        if result.verified is not None:
            print(f"verified      : {result.verified}", file=out)
        chaos = result.extra.get("chaos")
        if chaos is not None:
            snap = result.extra["metrics"]
            dead = sorted(chaos.dead_places)
            print(
                f"chaos         : {int(snap.total('chaos.drops'))} drops, "
                f"{int(snap.total('chaos.duplicates'))} dups, "
                f"{int(snap.total('chaos.delays'))} delays, "
                f"{int(snap.total('transport.retry.count'))} retries; "
                f"dead places {dead if dead else 'none'}",
                file=out,
            )
        if args.stats:
            snap = result.extra["metrics"]
            print(file=out)
            print("-- metrics --", file=out)
            print(f"network msgs  : {int(snap.total('net.messages'))}", file=out)
            print(f"network bytes : {int(snap.total('net.bytes'))}", file=out)
            print(f"finish ctl    : {int(snap.total('finish.ctl_messages'))} msgs, "
                  f"{int(snap.total('finish.ctl_bytes'))} bytes", file=out)
            print(f"steals        : {int(snap.total('glb.steal_attempts'))} attempts, "
                  f"{int(snap.total('glb.steals_ok'))} ok", file=out)
            print(snap.render(), file=out)
        return 0 if result.verified is not False else 1

    if args.command == "trace":
        try:
            result = simulate(args.kernel, args.places, trace=True, chaos=args.chaos)
        except DeadPlaceError as exc:
            print(f"kernel        : {args.kernel}", file=out)
            print(f"places        : {args.places}", file=out)
            print(f"failed        : {exc}", file=out)
            return 1
        tracer = result.extra["trace"]
        ext = "json" if args.format == "chrome" else "jsonl"
        path = args.out or f"trace_{args.kernel}_{args.places}.{ext}"
        if args.format == "chrome":
            tracer.export_chrome(path)
        else:
            tracer.export_jsonl(path)
        print(f"kernel        : {result.kernel}", file=out)
        print(f"places        : {result.places}", file=out)
        print(f"simulated time: {result.sim_time:.6f} s", file=out)
        print(f"trace         : {len(tracer.events)} events -> {path}", file=out)
        if args.no_audit:
            return 0
        report = audit_trace(tracer, places=args.places)
        print(report.render(), file=out)
        return 0 if report.passed else 1

    if args.command == "figure":
        panel = figure1_panel(args.kernel, include_sim=not args.no_sim)
        print(render_panel(panel), file=out)
        return 0

    if args.command == "tables":
        print(render_table1(table1()), file=out)
        print(file=out)
        print(render_table2(table2()), file=out)
        return 0

    if args.command == "report":
        from repro.harness.report import generate

        generate(out)
        return 0

    raise AssertionError("unreachable")


if __name__ == "__main__":
    raise SystemExit(main())
