"""Command-line interface for the reproduction harness.

::

    python -m repro.cli kernels                      # list kernels
    python -m repro.cli run uts --places 64          # one simulated run
    python -m repro.cli run uts --places 64 --stats  # ... plus the metrics snapshot
    python -m repro.cli run uts --places 32 --chaos "seed=7,drop=0.05"   # fault injection
    python -m repro.cli trace uts --places 32        # traced run + protocol audit
    python -m repro.cli figure stream               # one Figure 1 panel
    python -m repro.cli tables                      # Tables 1 and 2
    python -m repro.cli report                      # the whole EXPERIMENTS body
    python -m repro.cli perf --quick --check        # wall-clock benches vs baseline
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import ChaosError, DeadPlaceError, KernelError
from repro.harness.figures import figure1_panel, render_panel
from repro.harness.reporting import si
from repro.harness.runner import KERNELS, simulate
from repro.harness.tables import render_table1, render_table2, table1, table2
from repro.obs import audit_trace
from repro.sim import ENGINES


def build_parser() -> argparse.ArgumentParser:
    """The argparse command tree (kernels / run / figure / tables / report)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction harness for 'X10 and APGAS at Petascale' (PPoPP 2014)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("kernels", help="list the eight kernels")

    chaos_help = (
        "fault-injection spec, e.g. 'seed=7,drop=0.05,dup=0.02,delay=0.1:2e-5,kill=5@1e-3'; "
        "switches the transport into resilient (ack/retry) mode; on "
        "--backend procs only kill=place@time applies, and it SIGKILLs the "
        "place's real OS process at that wall-clock time"
    )

    resilient_help = (
        "checkpoint/restore + elastic recovery: kills under --chaos are healed "
        "by respawning the place and re-executing only the lost epoch "
        "(on --backend procs: a freshly forked OS process)"
    )

    engine_help = (
        "event core: 'slotted' (preallocated slot arrays, the default) or "
        "'classic' (per-event objects); both produce bit-identical runs"
    )

    run = sub.add_parser("run", help="simulate one kernel at one scale")
    run.add_argument("kernel", choices=KERNELS)
    run.add_argument("--places", type=int, default=32)
    run.add_argument("--engine", choices=sorted(ENGINES), default=None, help=engine_help)
    run.add_argument(
        "--stats", action="store_true", help="print the metrics snapshot after the result"
    )
    run.add_argument("--chaos", default=None, metavar="SPEC", help=chaos_help)
    run.add_argument("--resilient", action="store_true", help=resilient_help)
    run.add_argument(
        "--backend",
        choices=["sim", "procs"],
        default=None,
        help="execution backend for the portable program: 'sim' (discrete-event "
        "simulator) or 'procs' (one OS process per place, real sockets); "
        "default runs the full simulator kernel instead",
    )
    run.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for --backend procs (kills and reaps on expiry)",
    )

    conform = sub.add_parser(
        "conform",
        help="differential conformance: run one portable kernel on the simulator "
        "and on real processes, and require identical results",
    )
    conform.add_argument("kernel", choices=KERNELS)
    conform.add_argument("--places", type=int, default=4)
    conform.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget for the procs run",
    )

    trace = sub.add_parser("trace", help="run one kernel with event tracing and audit the trace")
    trace.add_argument("kernel", choices=KERNELS)
    trace.add_argument("--places", type=int, default=32)
    trace.add_argument("--engine", choices=sorted(ENGINES), default=None, help=engine_help)
    trace.add_argument("--chaos", default=None, metavar="SPEC", help=chaos_help)
    trace.add_argument("--resilient", action="store_true", help=resilient_help)
    trace.add_argument("--out", default=None, help="trace output path (default trace_<kernel>_<places>)")
    trace.add_argument(
        "--format",
        choices=("chrome", "jsonl"),
        default="chrome",
        help="chrome trace_event JSON (default) or one event per line",
    )
    trace.add_argument("--no-audit", action="store_true", help="skip the protocol audit")

    serve = sub.add_parser(
        "serve",
        help="multi-tenant serving: schedule many concurrent kernel jobs on one machine",
    )
    serve.add_argument(
        "scenario",
        nargs="?",
        default=None,
        help="scenario spec JSON (default: a built-in two-tenant demo)",
    )
    serve.add_argument("--places", type=int, default=None, help="override the machine size")
    serve.add_argument("--seed", type=int, default=None, help="override the scenario seed")
    serve.add_argument(
        "--duration", type=float, default=None, help="override the arrival window (simulated s)"
    )
    serve.add_argument("--chaos", default=None, metavar="SPEC", help=chaos_help)
    serve.add_argument(
        "--stats", action="store_true", help="print the metrics snapshot after the report"
    )
    serve.add_argument(
        "--json", action="store_true", help="machine-readable SLO report (schema v1)"
    )
    serve.add_argument(
        "--audit",
        action="store_true",
        help="run traced and gate on the protocol audit (incl. serve.isolation)",
    )

    fig = sub.add_parser("figure", help="regenerate one Figure 1 panel")
    fig.add_argument("kernel", choices=KERNELS)
    fig.add_argument("--no-sim", action="store_true", help="model rows only (fast)")

    sub.add_parser("tables", help="regenerate Tables 1 and 2")
    sub.add_parser("report", help="regenerate the full EXPERIMENTS body")

    perf = sub.add_parser(
        "perf",
        help="wall-clock benchmarks of the simulator itself (BENCH_sim/BENCH_kernels)",
    )
    perf.add_argument(
        "--suite",
        choices=("sim", "kernels", "all"),
        default="all",
        help="which suite to run (default: all)",
    )
    perf.add_argument(
        "--quick",
        action="store_true",
        help="skip full-only benches (uts@1024); the CI mode",
    )
    perf.add_argument("--repeats", type=int, default=3, help="timed runs per bench (min is reported)")
    perf.add_argument("--out-dir", default=".", help="where to write BENCH_*.json (default: cwd)")
    perf.add_argument(
        "--check",
        action="store_true",
        help="compare against committed baselines and exit 1 on regression",
    )
    perf.add_argument(
        "--baseline-dir",
        default=".",
        help="directory holding baseline BENCH_*.json (default: cwd)",
    )
    perf.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="allowed fractional slowdown before --check fails (default 0.2)",
    )

    analyze = sub.add_parser(
        "analyze",
        help="static analysis: infer finish pragmas and lint for APGAS anti-patterns",
    )
    analyze.add_argument("paths", nargs="+", help="files and/or directories to analyze")
    analyze.add_argument("--json", action="store_true", help="machine-readable report")
    analyze.add_argument(
        "--sites", action="store_true", help="also list every classified finish site"
    )
    analyze.add_argument(
        "--baseline",
        default=None,
        metavar="PATH",
        help="findings baseline: known findings listed there do not gate",
    )
    analyze.add_argument(
        "--write-baseline",
        action="store_true",
        help="write the current findings to --baseline and exit 0",
    )
    analyze.add_argument(
        "--mhp",
        action="store_true",
        help="also dump every may-happen-in-parallel statement pair the "
        "race rules reason over",
    )

    race = sub.add_parser(
        "race",
        help="dynamic determinacy-race detection: run kernels or scripts "
        "under the vector-clock happens-before checker",
    )
    race.add_argument(
        "targets",
        nargs="+",
        help="kernel names (portable program by default) and/or Python "
        "scripts to execute under forced detection",
    )
    race.add_argument("--places", type=int, default=4)
    race.add_argument("--engine", choices=sorted(ENGINES), default=None, help=engine_help)
    race.add_argument(
        "--full-sim",
        action="store_true",
        help="run kernel targets through the full simulator kernel "
        "(modeled machine physics) instead of the portable program",
    )
    return parser


def main(argv=None, out=sys.stdout) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)

    if args.command == "kernels":
        for k in KERNELS:
            print(k, file=out)
        return 0

    if args.command == "run":
        if args.backend is not None:
            return _run_backend(args, out)
        try:
            result = simulate(
                args.kernel, args.places, chaos=args.chaos, resilient=args.resilient,
                engine=args.engine,
            )
        except ChaosError as exc:
            print(f"error: bad --chaos spec: {exc}", file=out)
            return 2
        except KernelError as exc:
            print(f"error: {exc}", file=out)
            return 2
        except DeadPlaceError as exc:
            print(f"kernel        : {args.kernel}", file=out)
            print(f"places        : {args.places}", file=out)
            print(f"failed        : {exc}", file=out)
            return 1
        print(f"kernel        : {result.kernel}", file=out)
        print(f"places        : {result.places}", file=out)
        print(f"simulated time: {result.sim_time:.6f} s", file=out)
        print(f"aggregate     : {si(result.value, result.unit)}", file=out)
        per = si(result.per_core, result.unit)
        print(f"per core/host : {per}", file=out)
        if result.verified is not None:
            print(f"verified      : {result.verified}", file=out)
        checksum = result.extra.get("checksum")
        if checksum is not None:
            print(f"checksum      : {checksum}", file=out)
        chaos = result.extra.get("chaos")
        if chaos is not None:
            snap = result.extra["metrics"]
            dead = sorted(chaos.dead_places)
            print(
                f"chaos         : {int(snap.total('chaos.drops'))} drops, "
                f"{int(snap.total('chaos.duplicates'))} dups, "
                f"{int(snap.total('chaos.delays'))} delays, "
                f"{int(snap.total('transport.retry.count'))} retries; "
                f"dead places {dead if dead else 'none'}",
                file=out,
            )
        if args.resilient:
            snap = result.extra["metrics"]
            print(
                f"resilient     : "
                f"{int(snap.total('resilient.epochs_committed'))} epochs committed, "
                f"{int(snap.total('resilient.epochs_aborted'))} aborted, "
                f"{int(snap.total('resilient.recoveries'))} recoveries, "
                f"{int(snap.total('chaos.place_revivals'))} places revived",
                file=out,
            )
        if args.stats:
            _print_metrics(result.extra["metrics"], out)
        return 0 if result.verified is not False else 1

    if args.command == "conform":
        from repro.xrt.conformance import run_conformance

        try:
            report = run_conformance(
                args.kernel, args.places, deadline=args.deadline
            )
        except KernelError as exc:
            print(f"error: {exc}", file=out)
            return 2
        print(report.render(), file=out)
        return 0 if report.conformant else 1

    if args.command == "trace":
        try:
            result = simulate(
                args.kernel, args.places, trace=True, chaos=args.chaos,
                resilient=args.resilient, engine=args.engine,
            )
        except ChaosError as exc:
            print(f"error: bad --chaos spec: {exc}", file=out)
            return 2
        except KernelError as exc:
            print(f"error: {exc}", file=out)
            return 2
        except DeadPlaceError as exc:
            print(f"kernel        : {args.kernel}", file=out)
            print(f"places        : {args.places}", file=out)
            print(f"failed        : {exc}", file=out)
            return 1
        tracer = result.extra["trace"]
        ext = "json" if args.format == "chrome" else "jsonl"
        path = args.out or f"trace_{args.kernel}_{args.places}.{ext}"
        if args.format == "chrome":
            tracer.export_chrome(path)
        else:
            tracer.export_jsonl(path)
        print(f"kernel        : {result.kernel}", file=out)
        print(f"places        : {result.places}", file=out)
        print(f"simulated time: {result.sim_time:.6f} s", file=out)
        print(f"trace         : {len(tracer.events)} events -> {path}", file=out)
        if args.no_audit:
            return 0
        report = audit_trace(tracer, places=args.places)
        print(report.render(), file=out)
        return 0 if report.passed else 1

    if args.command == "figure":
        panel = figure1_panel(args.kernel, include_sim=not args.no_sim)
        print(render_panel(panel), file=out)
        return 0

    if args.command == "tables":
        print(render_table1(table1()), file=out)
        print(file=out)
        print(render_table2(table2()), file=out)
        return 0

    if args.command == "report":
        from repro.harness.report import generate

        generate(out)
        return 0

    if args.command == "serve":
        return _cmd_serve(args, out)

    if args.command == "perf":
        return _cmd_perf(args, out)

    if args.command == "analyze":
        return _cmd_analyze(args, out)

    if args.command == "race":
        return _cmd_race(args, out)

    raise AssertionError("unreachable")


def _run_backend(args, out) -> int:
    """``repro run <kernel> --backend {sim,procs}``: one portable-program run."""
    from repro.errors import ProcsError, ProcsTimeoutError, ResilientError
    from repro.xrt.backend import get_backend

    if (args.chaos or args.resilient) and args.backend != "procs":
        print(
            "error: on --backend runs, --chaos and --resilient are implemented "
            "only for --backend procs (real process kills and respawns)",
            file=out,
        )
        return 2
    if args.engine is not None and args.backend == "procs":
        print(
            "error: --engine selects the simulator's event core and does not "
            "apply to --backend procs",
            file=out,
        )
        return 2
    try:
        if args.backend == "procs":
            backend = get_backend(
                "procs", deadline=args.deadline,
                chaos=args.chaos, resilient=args.resilient,
            )
        else:
            backend = get_backend(args.backend, engine=args.engine)
        run = backend.run(args.kernel, args.places)
    except ChaosError as exc:
        print(f"error: bad --chaos spec: {exc}", file=out)
        return 2
    except KernelError as exc:
        print(f"error: {exc}", file=out)
        return 2
    except ProcsTimeoutError as exc:
        print(f"kernel        : {args.kernel}", file=out)
        print(f"places        : {args.places}", file=out)
        print(f"timed out     : {exc}", file=out)
        return 1
    except (ProcsError, DeadPlaceError, ResilientError) as exc:
        print(f"kernel        : {args.kernel}", file=out)
        print(f"places        : {args.places}", file=out)
        print(f"failed        : {exc}", file=out)
        return 1
    print(f"kernel        : {run.kernel}", file=out)
    print(f"places        : {run.places}", file=out)
    print(f"backend       : {run.backend}", file=out)
    sim_time = run.extra.get("sim_time")
    if sim_time is not None:
        print(f"simulated time: {sim_time:.6f} s", file=out)
    print(f"wall time     : {run.wall_time:.3f} s", file=out)
    ctl = ", ".join(f"{k}={v}" for k, v in sorted(run.ctl_by_pragma.items()))
    print(f"finish ctl    : {ctl}", file=out)
    if run.backend == "procs":
        print(
            f"routed        : {run.extra['messages_routed']} messages, "
            f"{run.extra['bytes_routed']} bytes",
            file=out,
        )
    if "deaths" in run.extra:
        deaths = run.extra["deaths"]
        dead = ", ".join(f"{d['place']}@{d['time']:g}s" for d in deaths) or "none"
        print(f"chaos         : {run.extra.get('chaos') or 'none'}", file=out)
        print(
            f"deaths        : {dead} "
            f"({run.extra.get('deaths_tolerated', 0)} finish write-offs)",
            file=out,
        )
        print(
            f"recovery      : {run.extra.get('revivals', 0)} respawns, "
            f"{run.extra.get('frames_dropped', 0)} frames dropped",
            file=out,
        )
    nodes = run.result.get("nodes") if isinstance(run.result, dict) else None
    if nodes is not None:
        print(f"nodes         : {nodes}", file=out)
    print(f"checksum      : {run.checksum}", file=out)
    return 0


def _print_metrics(snap, out) -> None:
    """The ``--stats`` block shared by ``run`` and ``serve``."""
    print(file=out)
    print("-- metrics --", file=out)
    print(f"network msgs  : {int(snap.total('net.messages'))}", file=out)
    print(f"network bytes : {int(snap.total('net.bytes'))}", file=out)
    print(f"finish ctl    : {int(snap.total('finish.ctl_messages'))} msgs, "
          f"{int(snap.total('finish.ctl_bytes'))} bytes", file=out)
    print(f"steals        : {int(snap.total('glb.steal_attempts'))} attempts, "
          f"{int(snap.total('glb.steals_ok'))} ok", file=out)
    print(f"deaths        : {int(snap.total('finish.deaths_tolerated'))} tolerated",
          file=out)
    depth = snap.get("serve.queue_depth", None)
    if isinstance(depth, dict) and depth.get("count"):
        print(f"queue depth   : max {int(depth['max'])}, mean {depth['mean']:.2f}",
              file=out)
    print(snap.render(), file=out)


def _cmd_serve(args, out) -> int:
    """Run one serving scenario.

    Exit codes: 0 — scenario completed (and, with ``--audit``, the protocol
    audit passed); 1 — jobs aborted without fault injection to blame, a place
    death escaped the scheduler, or the audit failed; 2 — malformed scenario
    spec or chaos spec.
    """
    import json as _json
    from dataclasses import replace

    from repro.errors import ServeError
    from repro.serve import load_scenario, quick_scenario, run_scenario

    try:
        spec = load_scenario(args.scenario) if args.scenario else quick_scenario()
        overrides = {}
        if args.places is not None:
            if args.places < 3:
                raise ServeError(
                    f"--places must be >= 3 (one control place plus a pool), "
                    f"got {args.places}"
                )
            overrides["places"] = args.places
        if args.seed is not None:
            overrides["seed"] = args.seed
        if args.duration is not None:
            if args.duration <= 0:
                raise ServeError(f"--duration must be > 0, got {args.duration}")
            overrides["duration"] = args.duration
        if args.chaos is not None:
            overrides["chaos"] = args.chaos
        if overrides:
            spec = replace(spec, **overrides)
        report, outcome, rt = run_scenario(spec, trace=args.audit)
    except ServeError as exc:
        print(f"error: {exc}", file=out)
        return 2
    except ChaosError as exc:
        print(f"error: bad chaos spec: {exc}", file=out)
        return 2
    except DeadPlaceError as exc:
        print(f"serve failed  : {exc}", file=out)
        return 1

    if args.json:
        print(_json.dumps(report.to_json(), indent=2, sort_keys=True), file=out)
    else:
        print(report.render(), file=out)
        print(report.summary_line(), file=out)
    if args.stats:
        _print_metrics(rt.obs.metrics.snapshot(), out)

    rc = 0
    if args.audit:
        audit = audit_trace(rt.obs.trace, places=spec.places)
        if not args.json or not audit.passed:
            print(audit.render(), file=out)
        if not audit.passed:
            rc = 1
    if rt.chaos is None and report.aborted:
        # aborts with no fault injection mean the scheduler broke a job
        rc = 1
    return rc


def _cmd_analyze(args, out) -> int:
    """Run the static analyzer over files/directories.

    Exit codes: 0 — clean (no new findings at warning severity or above);
    1 — findings; 2 — usage error (missing path, unparsable source, bad
    baseline).
    """
    from repro.analyze import Baseline, analyze_paths
    from repro.analyze.report import render_text, write_json
    from repro.errors import AnalyzeError

    if args.write_baseline and not args.baseline:
        print("error: --write-baseline requires --baseline PATH", file=out)
        return 2
    try:
        baseline = Baseline.load(args.baseline) if args.baseline else None
        result = analyze_paths(args.paths, baseline=baseline)
    except AnalyzeError as exc:
        print(f"error: {exc}", file=out)
        return 2
    if args.write_baseline:
        Baseline(path=args.baseline).write(args.baseline, result.findings)
        print(
            f"wrote {len(result.findings)} finding fingerprint(s) to {args.baseline}",
            file=out,
        )
        return 0
    if args.json:
        write_json(result, out)
    else:
        render_text(result, out, show_sites=args.sites)
    if args.mhp:
        from repro.analyze.mhp import MhpAnalysis

        lines = MhpAnalysis(result.program).render_pairs()
        print(file=out)
        print(f"-- may-happen-in-parallel: {len(lines)} pair(s) --", file=out)
        for line in lines:
            print(line, file=out)
    return 1 if result.gating else 0


def _cmd_race(args, out) -> int:
    """Run targets under the dynamic race detector.

    A target is a shipped kernel name (run as its portable program, or the
    full simulator kernel with ``--full-sim``) or a path to a Python script,
    which is executed with detection forced on every runtime it builds.

    Exit codes: 0 — every target race-free; 1 — at least one race detected
    (each is printed); 2 — usage error (unknown target, missing script).
    """
    import os

    from repro.runtime import racedetect

    total = 0
    for target in args.targets:
        if target.endswith(".py") or os.sep in target:
            if not os.path.exists(target):
                print(f"error: no such script: {target}", file=out)
                return 2
            races = [
                race
                for det in racedetect.run_script(target)
                for race in det.races
            ]
            label = target
        elif target in KERNELS:
            label = f"{target}@{args.places}"
            try:
                if args.full_sim:
                    result = simulate(
                        target, args.places, engine=args.engine, race=True
                    )
                    races = result.extra["race"].races
                else:
                    from repro.kernels.portable import build_program
                    from repro.runtime.runtime import ApgasRuntime

                    kwargs = {} if args.engine is None else {"engine": args.engine}
                    rt = ApgasRuntime(places=args.places, race=True, **kwargs)
                    rt.run(build_program(target, args.places))
                    races = rt.race.races
            except (KernelError, DeadPlaceError) as exc:
                print(f"error: {label}: {exc}", file=out)
                return 2
        else:
            print(
                f"error: unknown target {target!r} (not a kernel or a .py script)",
                file=out,
            )
            return 2
        if races:
            total += len(races)
            print(f"{label}: {len(races)} race(s)", file=out)
            for race in races:
                print(f"  {race.describe()}", file=out)
        else:
            print(f"{label}: clean", file=out)
    return 1 if total else 0


def _cmd_perf(args, out) -> int:
    """Run the wall-clock suites; write BENCH_*.json; optionally gate on baselines.

    Exit codes: 0 — ran (and, with ``--check``, no regression); 1 — at least
    one bench regressed past tolerance; 2 — usage error (bad tolerance,
    missing baseline file with ``--check``).
    """
    import os

    from repro.perf import (
        DEFAULT_TOLERANCE,
        compare_to_baseline,
        load_results,
        render_results,
        run_suite,
        write_results,
    )

    if args.tolerance is not None and not 0.0 <= args.tolerance < 1.0:
        print(f"error: --tolerance must be in [0, 1), got {args.tolerance}", file=out)
        return 2
    if args.repeats < 1:
        print(f"error: --repeats must be >= 1, got {args.repeats}", file=out)
        return 2

    suites = ("sim", "kernels") if args.suite == "all" else (args.suite,)

    # load baselines up front so --check with out-dir == baseline-dir compares
    # against the committed content, not the file this run is about to write
    baselines = {}
    if args.check:
        for suite in suites:
            path = os.path.join(args.baseline_dir, f"BENCH_{suite}.json")
            if not os.path.exists(path):
                print(f"error: --check needs a baseline at {path}", file=out)
                return 2
            try:
                baselines[suite] = load_results(path)
            except (ValueError, KeyError, TypeError) as exc:
                print(f"error: unreadable baseline {path}: {exc}", file=out)
                return 2

    os.makedirs(args.out_dir, exist_ok=True)
    regressed = False
    for suite in suites:
        print(f"suite {suite}{' (quick)' if args.quick else ''}:", file=out)
        results = run_suite(
            suite,
            quick=args.quick,
            repeats=args.repeats,
            log=lambda msg: print(msg, file=out),
        )
        base = baselines.get(suite)
        print(render_results(results, base.results if base else None), file=out)
        path = os.path.join(args.out_dir, f"BENCH_{suite}.json")
        # each suite gates (and re-serializes) at its own tolerance; --tolerance
        # overrides for this invocation only
        if args.tolerance is not None:
            tolerance = args.tolerance
        elif base is not None:
            tolerance = base.tolerance
        else:
            tolerance = DEFAULT_TOLERANCE
        write_results(path, suite, results, quick=args.quick, tolerance=tolerance)
        print(f"  -> {path}", file=out)
        if args.check:
            suite_regs = compare_to_baseline(results, base.results, tolerance)
            for reg in suite_regs:
                regressed = True
                print(
                    f"REGRESSION {reg.name}: {reg.value:,.0f} vs baseline "
                    f"{reg.baseline:,.0f} ({reg.ratio:.2f}x, tolerance {tolerance:.0%})",
                    file=out,
                )
            if not suite_regs:
                print(f"  suite {suite}: within tolerance {tolerance:.0%}", file=out)
    if args.check:
        if regressed:
            return 1
        print("perf check passed", file=out)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
