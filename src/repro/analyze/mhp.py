"""May-happen-in-parallel analysis over the finish/async/at structure.

APGAS programs in the paper's subset form series-parallel task trees: a
``finish`` region runs its body (the *continuation*) concurrently with every
activity it governs, and those activities concurrently with each other, until
``f.wait()`` joins them all.  The MHP question therefore decomposes per
finish site into *task groups*:

* the continuation — the ``with`` body's own statements (plus anything its
  nested finish regions spawn, until their own waits),
* one group per governed spawn — the spawned body's transitive access
  closure (:class:`~repro.analyze.effects.EffectIndex`), where a spawn under
  an unguarded loop is *provably multi-instance* and thus self-parallel.

Two statements may happen in parallel iff their accesses land in different
groups of the same site, or in the same self-parallel group.  This is an
over-approximation by construction (no wait-placement reasoning inside the
body, opaque callees contribute nothing they can be blamed for) — exactly
the direction the static/dynamic agreement contract needs: every race the
vector-clock detector observes must be a pair the MHP analysis predicted.

Lint rules tighten the over-approximation with provability conditions
(constant store keys, provably coinciding places) before firing; see
APG108..APG110 in :mod:`repro.analyze.apgas_rules`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Optional

from repro.analyze.callgraph import (
    FinishSiteNode,
    Spawn,
    finish_sites,
    region_events,
    ungoverned_events,
)
from repro.analyze.effects import EffectIndex
from repro.analyze.infer import iter_function_scopes
from repro.analyze.sourcemodel import Program, Scope


@dataclass
class TaskGroup:
    """One concurrency unit of a finish site."""

    label: str
    kind: str                 #: "continuation" | "local" | "remote" | "copy"
    spawn: Optional[Spawn]    #: None for the continuation
    multi: bool               #: provably more than one instance (unguarded loop)
    accesses: list            #: the group's transitive Access closure


@dataclass
class SiteGroups:
    """A finish site with its task groups."""

    site: FinishSiteNode
    groups: list


def _norm(path: str) -> str:
    return os.path.abspath(path)


class MhpAnalysis:
    """Whole-program MHP pairs + per-site task groups (computed lazily)."""

    MAX_DEPTH = 8

    def __init__(self, program: Program) -> None:
        self.program = program
        self.effects = EffectIndex(program)
        self._sites: Optional[list] = None
        self._pairs: Optional[set] = None
        self._flat_cache: dict[int, list] = {}
        self._flat_stack: set[int] = set()

    # -- task groups ------------------------------------------------------------

    def site_groups(self) -> list:
        if self._sites is not None:
            return self._sites
        sites: list[SiteGroups] = []
        for module in self.program.modules:
            scopes = [self.program.module_scope[module.path]]
            scopes.extend(iter_function_scopes(self.program, module))
            for scope in scopes:
                for site in finish_sites(scope, self.program):
                    sites.append(SiteGroups(site, self._groups_for(site)))
        self._sites = sites
        return sites

    def _groups_for(self, site: FinishSiteNode) -> list:
        groups: list[TaskGroup] = []
        continuation = self.effects.region_accesses(
            site.with_node.body, site.scope, include_spawns=False
        )
        groups.append(
            TaskGroup("continuation", "continuation", None, False, continuation)
        )
        events = region_events(site.with_node.body, site.scope, self.program)
        for spawn, multi in self._spawns_with_multi(events):
            accesses = (
                self.effects.scope_accesses(spawn.callee)
                if spawn.callee is not None
                else []
            )
            callee = spawn.callee.qualname if spawn.callee is not None else "<opaque>"
            groups.append(
                TaskGroup(
                    f"{spawn.kind}:{callee}@{spawn.line}",
                    spawn.kind,
                    spawn,
                    multi,
                    accesses,
                )
            )
        return groups

    def _spawns_with_multi(self, events, depth: int = 0) -> list:
        """(spawn, provably-multi-instance) for the region's governed spawns,
        following plain helper calls (their ungoverned spawns are governed by
        the caller's finish — the APGAS composition rule)."""
        out = [
            (s, s.loop_depth >= 1 and not s.guarded) for s in events.spawns
        ]
        if depth >= self.MAX_DEPTH:
            return out
        for call in events.calls:
            call_multi = call.loop_depth >= 1 and not call.guarded
            for spawn, multi in self._flat_scope_spawns(call.target, depth + 1):
                out.append((spawn, multi or call_multi))
        return out

    def _flat_scope_spawns(self, scope: Scope, depth: int) -> list:
        key = id(scope)
        cached = self._flat_cache.get(key)
        if cached is not None:
            return cached
        if key in self._flat_stack:
            return []
        self._flat_stack.add(key)
        try:
            out = self._spawns_with_multi(
                ungoverned_events(scope, self.program), depth
            )
        finally:
            self._flat_stack.discard(key)
        self._flat_cache[key] = out
        return out

    # -- MHP pairs ---------------------------------------------------------------

    def pairs(self) -> set:
        """Every MHP statement pair as ``frozenset({(path, line), ...})``
        (absolute paths; a one-element set is a statement racing another
        instance of itself)."""
        if self._pairs is not None:
            return self._pairs
        pairs: set = set()
        for sg in self.site_groups():
            uniq = [
                sorted({((_norm(a.path), a.line), a.level) for a in g.accesses})
                for g in sg.groups
            ]
            for i, gi in enumerate(sg.groups):
                # self-parallelism: a multi group races itself completely; a
                # single-instance group only races its own spawned
                # descendants (level >= 1 runs concurrently with level 0 and
                # with other descendants)
                for ai, (ca, la) in enumerate(uniq[i]):
                    for cb, lb in uniq[i][ai:]:
                        if gi.multi or la >= 1 or lb >= 1:
                            if gi.multi or not (ca == cb and la == 0 and lb == 0):
                                pairs.add(frozenset({ca, cb}))
                # cross-group: everything in gi vs everything in later groups
                for j in range(i + 1, len(sg.groups)):
                    for ca, _la in uniq[i]:
                        for cb, _lb in uniq[j]:
                            pairs.add(frozenset({ca, cb}))
        self._pairs = pairs
        return pairs

    def predicts(self, a: tuple, b: tuple) -> bool:
        """True when accesses at ``a``/``b`` (``(path, line)``) may run in
        parallel according to the static analysis."""
        pair = frozenset({(_norm(a[0]), a[1]), (_norm(b[0]), b[1])})
        return pair in self.pairs()

    def render_pairs(self) -> list[str]:
        """Human-readable sorted dump (the ``repro analyze --mhp`` output)."""
        lines = []
        for pair in self.pairs():
            items = sorted(pair)
            (pa, la) = items[0]
            (pb, lb) = items[-1]
            ra = os.path.relpath(pa).replace(os.sep, "/")
            rb = os.path.relpath(pb).replace(os.sep, "/")
            lines.append(f"{ra}:{la} <||> {rb}:{lb}")
        return sorted(set(lines))
