"""Source loading and the lexical-scope model of the whole-program analyzer.

The analyzer works on plain ASTs — nothing is imported or executed.  A
:class:`Program` holds every module named on the command line plus any
modules pulled in on demand (the agreement checker analyzes whichever file a
runtime finish site lives in).  Each function-like construct (``def``,
``async def``, ``lambda``) and each ``class`` body becomes a :class:`Scope`
so that name resolution can follow Python's lexical rules: a name used inside
a nested function resolves through the chain of enclosing *function* scopes
(class bodies are skipped, as in Python), then module level, then the
module's ``from x import y`` table when the imported module is part of the
analyzed set.
"""

from __future__ import annotations

import ast
import os
from typing import Iterable, Optional

from repro.errors import AnalyzeError


class SourceModule:
    """One parsed file."""

    __slots__ = ("path", "source", "tree", "lines")

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.path = path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()

    def line(self, lineno: int) -> str:
        """1-based source line (empty string when out of range)."""
        if 1 <= lineno <= len(self.lines):
            return self.lines[lineno - 1]
        return ""


class Scope:
    """A lexical scope: module, class body, function, or lambda."""

    __slots__ = (
        "kind", "node", "module", "parent", "name", "qualname",
        "functions", "assigns", "params",
    )

    def __init__(self, kind: str, node, module: SourceModule, parent: Optional["Scope"], name: str):
        self.kind = kind  # "module" | "class" | "function" | "lambda"
        self.node = node
        self.module = module
        self.parent = parent
        self.name = name
        if parent is None or parent.kind == "module":
            self.qualname = name
        else:
            self.qualname = f"{parent.qualname}.{name}"
        #: immediate nested function/lambda scopes by name (methods for classes)
        self.functions: dict[str, Scope] = {}
        #: simple single-target ``name = expr`` bindings in this scope's body
        self.assigns: dict[str, ast.expr] = {}
        self.params: list[str] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Scope {self.kind} {self.qualname} @{self.module.path}>"

    @property
    def ctx_param(self) -> Optional[str]:
        """The activity-context parameter: by convention the first one."""
        return self.params[0] if self.params else None

    def owning_class(self) -> Optional["Scope"]:
        """The class scope this function is a method of, if any."""
        if self.parent is not None and self.parent.kind == "class":
            return self.parent
        return None

    def body_statements(self) -> list:
        node = self.node
        if isinstance(node, ast.Lambda):
            return [ast.Expr(value=node.body)]
        return list(node.body)


def _params_of(node) -> list[str]:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
        a = node.args
        names = [p.arg for p in a.posonlyargs] + [p.arg for p in a.args]
        return names
    return []


class _ScopeBuilder(ast.NodeVisitor):
    """Populate ``scope.functions`` / ``scope.assigns`` without descending
    into nested scopes (each nested scope builds itself)."""

    def __init__(self, program: "Program", scope: Scope) -> None:
        self.program = program
        self.scope = scope

    def build(self) -> None:
        node = self.scope.node
        if isinstance(node, ast.Lambda):
            self.visit(node.body)
            return
        for stmt in node.body:
            self.visit(stmt)

    def _enter(self, kind: str, node, name: str) -> None:
        child = Scope(kind, node, self.scope.module, self.scope, name)
        child.params = _params_of(node)
        self.program.scope_of[node] = child
        self.scope.functions[name] = child
        _ScopeBuilder(self.program, child).build()

    def visit_FunctionDef(self, node) -> None:
        self._enter("function", node, node.name)

    def visit_AsyncFunctionDef(self, node) -> None:
        self._enter("function", node, node.name)

    def visit_Lambda(self, node) -> None:
        self._enter("lambda", node, f"<lambda@{node.lineno}>")

    def visit_ClassDef(self, node) -> None:
        child = Scope("class", node, self.scope.module, self.scope, node.name)
        self.program.scope_of[node] = child
        self.scope.functions[node.name] = child
        builder = _ScopeBuilder(self.program, child)
        for stmt in node.body:
            builder.visit(stmt)

    def visit_Assign(self, node) -> None:
        if len(node.targets) == 1 and isinstance(node.targets[0], ast.Name):
            self.scope.assigns.setdefault(node.targets[0].id, node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node) -> None:
        if isinstance(node.target, ast.Name) and node.value is not None:
            self.scope.assigns.setdefault(node.target.id, node.value)
        self.generic_visit(node)

    def visit_NamedExpr(self, node) -> None:
        if isinstance(node.target, ast.Name):
            self.scope.assigns.setdefault(node.target.id, node.value)
        self.generic_visit(node)


def _module_name(path: str) -> str:
    """Dotted module name for import resolution (best effort)."""
    norm = os.path.normpath(os.path.abspath(path))
    parts = norm.replace("\\", "/").split("/")
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    for anchor in ("src", "site-packages"):
        if anchor in parts:
            parts = parts[parts.index(anchor) + 1:]
            break
    # fall back to the longest package-looking suffix
    return ".".join(parts[-4:]) if len(parts) > 4 else ".".join(parts)


def iter_python_files(paths: Iterable[str]) -> list[str]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    files: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            files.append(path)
        elif os.path.isdir(path):
            for root, dirs, names in os.walk(path):
                dirs[:] = sorted(d for d in dirs if d not in ("__pycache__", ".git"))
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(root, name))
        else:
            raise AnalyzeError(f"no such file or directory: {path}")
    return files


class Program:
    """Every analyzed module, with cross-module name resolution."""

    def __init__(self) -> None:
        self.modules: list[SourceModule] = []
        self.module_scope: dict[str, Scope] = {}  # path -> module scope
        #: ast node (FunctionDef/Lambda/ClassDef) -> its Scope
        self.scope_of: dict[ast.AST, Scope] = {}
        self._by_modname: dict[str, SourceModule] = {}
        self._imports: dict[str, dict[str, tuple[str, str]]] = {}  # path -> alias -> (mod, orig)
        #: path -> bound name -> dotted module (``import repro.runtime as rt``)
        self._module_imports: dict[str, dict[str, str]] = {}

    @classmethod
    def from_paths(cls, paths: Iterable[str]) -> "Program":
        program = cls()
        for path in iter_python_files(paths):
            program.add_file(path)
        return program

    def add_file(self, path: str) -> SourceModule:
        for mod in self.modules:
            if os.path.abspath(mod.path) == os.path.abspath(path):
                return mod
        try:
            with open(path, encoding="utf-8") as fh:
                source = fh.read()
        except OSError as exc:
            raise AnalyzeError(f"cannot read {path}: {exc}") from None
        return self.add_source(path, source)

    def add_source(self, path: str, source: str) -> SourceModule:
        """Add an in-memory module (used for sources without a file)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise AnalyzeError(f"cannot parse {path}: {exc}") from None
        module = SourceModule(path, source, tree)
        self.modules.append(module)
        self._by_modname[_module_name(path)] = module
        scope = Scope("module", tree, module, None, _module_name(path))
        self.module_scope[path] = scope
        builder = _ScopeBuilder(self, scope)
        for stmt in tree.body:
            builder.visit(stmt)
        self._imports[path] = self._collect_imports(tree)
        self._module_imports[path] = self._collect_module_imports(tree)
        return module

    @staticmethod
    def _collect_imports(tree: ast.Module) -> dict[str, tuple[str, str]]:
        table: dict[str, tuple[str, str]] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    table[alias.asname or alias.name] = (node.module, alias.name)
        return table

    @staticmethod
    def _collect_module_imports(tree: ast.Module) -> dict[str, str]:
        """``import a.b as x`` binds ``x`` to module ``a.b``; plain
        ``import a.b`` binds ``a`` (usages then spell ``a.b.f``)."""
        table: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        table[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".", 1)[0]
                        table[head] = head
        return table

    # -- name resolution ---------------------------------------------------------

    def resolve_function(self, name: str, scope: Scope, _depth: int = 0) -> Optional[Scope]:
        """The function/lambda scope ``name`` refers to at ``scope``, or None.

        Follows the lexical chain (skipping class bodies), simple aliases
        (``g = f``), and single-hop ``from m import f`` edges into other
        analyzed modules.
        """
        if _depth > 8:
            return None
        s: Optional[Scope] = scope
        while s is not None:
            if s.kind != "class":
                found = s.functions.get(name)
                if found is not None and found.kind in ("function", "lambda"):
                    return found
                bound = s.assigns.get(name)
                if bound is not None:
                    if isinstance(bound, ast.Name):
                        return self.resolve_function(bound.id, s, _depth + 1)
                    if isinstance(bound, ast.Lambda):
                        return self.scope_of.get(bound)
                    return None  # rebound to something we cannot follow
            s = s.parent
        imports = self._imports.get(scope.module.path, {})
        if name in imports:
            modname, orig = imports[name]
            target = self._lookup_module(modname)
            if target is not None:
                mscope = self.module_scope[target.path]
                found = mscope.functions.get(orig)
                if found is not None and found.kind in ("function", "lambda"):
                    return found
        return None

    def resolve_module_function(self, expr: ast.Attribute, scope: Scope) -> Optional[Scope]:
        """Resolve a dotted call target through a module binding.

        Handles ``import repro.runtime as rt; rt.helper(...)``, plain
        ``import a.b; a.b.helper(...)``, and module objects bound by
        ``from repro import runtime as rt``.  Returns the function scope in
        the target module when that module is part of the analyzed set.
        """
        parts: list[str] = []
        node: ast.expr = expr
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name) or not parts:
            return None
        parts.append(node.id)
        parts.reverse()  # ["rt", "helper"] or ["a", "b", "helper"]
        func = parts[-1]
        head, mids = parts[0], parts[1:-1]
        path = scope.module.path
        base = self._module_imports.get(path, {}).get(head)
        if base is None:
            # ``from repro import runtime as rt`` binds a *module* through the
            # from-import table; only follow it when it names a real module
            entry = self._imports.get(path, {}).get(head)
            if entry is not None:
                base = f"{entry[0]}.{entry[1]}"
        if base is None:
            return None
        modname = ".".join([base, *mids])
        target = self._lookup_module(modname)
        if target is None:
            return None
        found = self.module_scope[target.path].functions.get(func)
        if found is not None and found.kind in ("function", "lambda"):
            return found
        return None

    def _lookup_module(self, modname: str) -> Optional[SourceModule]:
        """Find an analyzed module by dotted name, tolerating differing
        anchor points (an import says ``helpers`` where the analyzed path
        produced ``pkg.helpers``, or vice versa)."""
        target = self._by_modname.get(modname)
        if target is not None:
            return target
        for key, module in self._by_modname.items():
            if key.endswith("." + modname) or modname.endswith("." + key):
                return module
        return None

    def resolve_method(self, scope: Scope, attr: str) -> Optional[Scope]:
        """Resolve ``self.<attr>`` / ``cls.<attr>`` inside a method body."""
        s: Optional[Scope] = scope
        while s is not None:
            cls = s.owning_class() if s.kind in ("function", "lambda") else None
            if cls is not None:
                found = cls.functions.get(attr)
                if found is not None and found.kind in ("function", "lambda"):
                    return found
            s = s.parent
        return None

    def binding_scope(self, name: str, scope: Scope) -> Optional[tuple[Scope, ast.expr]]:
        """The nearest enclosing scope that binds ``name`` with a simple
        assignment, plus the bound expression (lexical chain, class bodies
        skipped)."""
        s: Optional[Scope] = scope
        while s is not None:
            if s.kind != "class":
                if name in s.params:
                    return None  # a parameter, not a simple binding
                if name in s.assigns:
                    return (s, s.assigns[name])
            s = s.parent
        return None
