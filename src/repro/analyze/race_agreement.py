"""Static-vs-dynamic race agreement: every race the vector-clock detector
observes must be a pair the MHP analysis predicted.

The two layers over-approximate in the same direction — the dynamic detector
reports happens-before violations on the schedule that actually ran, while
:class:`~repro.analyze.mhp.MhpAnalysis` reports every statement pair that
*may* run in parallel on any schedule.  Dynamic ⊆ static is therefore the
soundness contract between them (the analogue of the pragma layer's
:mod:`repro.analyze.agreement`): a dynamic race the static analysis did not
predict means one of the layers models the finish/async/at structure wrong.

``check_race_agreement`` runs the shipped kernels (which must be race-free)
plus any seeded racy fixtures, and verifies the contract per target.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.analyze.mhp import MhpAnalysis
from repro.analyze.sourcemodel import Program, iter_python_files
from repro.runtime import racedetect


@dataclass
class RaceAgreement:
    """The verdict for one executed target (kernel or fixture script)."""

    target: str
    races: int           #: dynamic race reports observed
    pairs: int           #: distinct dynamic (path, line) race pairs
    unpredicted: list = field(default_factory=list)  #: pairs MHP missed

    @property
    def ok(self) -> bool:
        return not self.unpredicted


def _program_for(paths, pairs) -> Program:
    """Analyze the given paths plus every file a dynamic race names."""
    wanted: list[str] = []
    seen: set[str] = set()
    for path in paths:
        ap = os.path.abspath(path)
        if ap in seen or not os.path.exists(ap):
            continue
        seen.add(ap)
        wanted.append(ap)
    for pair in pairs:
        for fpath, _line in pair:
            ap = os.path.abspath(fpath)
            if ap not in seen and os.path.exists(ap):
                seen.add(ap)
                wanted.append(ap)
    program = Program()
    for fpath in iter_python_files(wanted):
        program.add_file(fpath)
    return program


def check_pairs(target: str, pairs: set, paths) -> RaceAgreement:
    """Verify a set of dynamic race pairs against the MHP prediction built
    from ``paths`` (files or directories) plus the racing files themselves."""
    mhp = MhpAnalysis(_program_for(paths, pairs))
    unpredicted = []
    for pair in sorted(pairs, key=sorted):
        items = sorted(pair)
        a, b = items[0], items[-1]  # singleton pair: a statement races itself
        if not mhp.predicts(a, b):
            unpredicted.append((a, b))
    return RaceAgreement(
        target=target, races=len(pairs), pairs=len(pairs), unpredicted=unpredicted
    )


def check_kernel(kernel: str, places: int = 4) -> RaceAgreement:
    """Run one full-simulator kernel under the dynamic detector and verify
    the contract.  Kernels are race-free, so this also asserts cleanliness."""
    from repro.harness.runner import simulate

    result = simulate(kernel, places, race=True)
    detector = result.extra["race"]
    pairs = set(detector.race_pairs())
    record = check_pairs(kernel, pairs, [_kernels_dir()])
    record.races = len(detector.races)
    return record


def check_script(path: str) -> RaceAgreement:
    """Run a racy fixture script under forced detection and verify that every
    dynamic race it produces was statically predicted."""
    detectors = racedetect.run_script(path)
    pairs: set = set()
    races = 0
    for det in detectors:
        pairs.update(det.race_pairs())
        races += len(det.races)
    record = check_pairs(os.path.basename(path), pairs, [path])
    record.races = races
    return record


def _kernels_dir() -> str:
    import repro.kernels

    return os.path.dirname(os.path.abspath(repro.kernels.__file__))


def check_race_agreement(kernels=None, fixtures=None, places: int = 4) -> list:
    """Agreement records for the shipped kernels plus any fixture scripts —
    the acceptance gate of the race-detection tentpole."""
    from repro.harness.runner import KERNELS

    out: list[RaceAgreement] = []
    for kernel in kernels if kernels is not None else list(KERNELS):
        out.append(check_kernel(kernel, places=places))
    for path in fixtures or ():
        out.append(check_script(path))
    return out
