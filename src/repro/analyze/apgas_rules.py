"""The APGAS anti-pattern rule catalogue (APG101..APG110).

Each rule targets a failure mode the runtime or the paper calls out:

========  ==========================  ==============================================
APG101    pragma-mismatch             annotation provably violates its own
                                      validate_fork contract (PragmaError at runtime)
APG102    escaping-activity           a task handle outlives its governing finish
APG103    blocking-call-in-activity   a real blocking call inside a simulated activity
APG104    mutable-capture             remote body mutates a captured local (race hazard)
APG105    default-finish-in-hot-loop  unannotated finish per loop iteration (paper 3.1)
APG106    unbounded-glb-victims       GLB configured with an unbounded victim set
APG107    resilient-without-hooks     resilient-capable kernel registers no
                                      checkpoint/restore hooks
APG108    concurrent-store-write      MHP tasks write the same store key at a
                                      provably identical place
APG109    captured-mutable-race       sibling local activities race on a captured
                                      mutable (write vs any access)
APG110    remote-rmw-unordered        an at-body read-modify-writes a remote key
                                      with no ordering finish between instances
========  ==========================  ==============================================

Rules only fire on *provable* violations — a ``confident=False``
classification (an unresolved body may hide spawns) never triggers
APG101, mirroring how the paper's prototype analysis falls back to the
always-correct default instead of guessing.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.analyze.callgraph import (
    SPAWN_METHODS,
    finish_sites,
    region_events,
    ungoverned_events,
)
from repro.analyze.infer import SiteClassification, iter_function_scopes
from repro.analyze.rules import Finding, RuleContext, RuleInfo, Severity, rule
from repro.analyze.sourcemodel import Scope
from repro.runtime.finish.pragmas import Pragma


def _all_scopes(ctx: RuleContext):
    for module in ctx.program.modules:
        yield ctx.program.module_scope[module.path]
        yield from iter_function_scopes(ctx.program, module)


def _all_spawns(ctx: RuleContext):
    """Every spawn in every analyzed module, exactly once (the ungoverned
    region of each scope plus each finish site's governed region)."""
    for scope in _all_scopes(ctx):
        yield from ungoverned_events(scope, ctx.program).spawns
        for site in finish_sites(scope, ctx.program):
            yield from region_events(site.with_node.body, site.scope, ctx.program).spawns


# -- APG101 ----------------------------------------------------------------------


@rule("APG101", "pragma-mismatch", Severity.ERROR)
def pragma_mismatch(ctx: RuleContext, info: RuleInfo) -> Iterator[Finding]:
    """A hand-written pragma contradicts what the finish can actually govern:
    the runtime will raise PragmaError on the first offending fork."""
    for c in ctx.classifications:
        if not c.confident or c.dynamic or c.annotation is None:
            continue
        ann = c.annotation
        violated = ""
        total = c.n_remote + c.n_local
        if ann is Pragma.FINISH_ASYNC and (
            total > 1 or c.max_loop >= 1 or c.spawning_children
        ):
            violated = "governs a single activity, but this finish spawns more"
        elif ann is Pragma.FINISH_HERE and (c.max_loop >= 1 or total > 2):
            violated = "governs a two-activity round trip, but this finish spawns more"
        elif ann is Pragma.FINISH_LOCAL and c.n_remote >= 1 and not c.remote_dests_home:
            violated = "cannot govern remote activities, but this finish spawns some"
        if violated:
            module = ctx.module(c.path)
            yield ctx.finding(
                info,
                module,
                c.lineno,
                f"{ann.value} {violated} ({c.reason}); "
                f"the analyzer suggests {c.suggestion.value}",
            )


# -- APG102 ----------------------------------------------------------------------


def _spawn_call(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in SPAWN_METHODS
    )


@rule("APG102", "escaping-activity", Severity.WARNING)
def escaping_activity(ctx: RuleContext, info: RuleInfo) -> Iterator[Finding]:
    """An activity handle created under a finish escapes the governing
    ``with`` block (returned, yielded, or used after the block): the handle
    outlives the scope that guarantees its termination."""
    for c in ctx.classifications:
        scope = c.site.scope
        module = scope.module
        with_node = c.site.with_node
        end = getattr(with_node, "end_lineno", with_node.lineno)
        handles: dict[str, int] = {}
        for stmt in with_node.body:
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Assign)
                    and len(node.targets) == 1
                    and isinstance(node.targets[0], ast.Name)
                    and _spawn_call(node.value)
                ):
                    handles[node.targets[0].id] = node.lineno
                elif isinstance(node, (ast.Return, ast.Yield)) and node.value is not None:
                    if _spawn_call(node.value):
                        verb = "returned" if isinstance(node, ast.Return) else "yielded"
                        yield ctx.finding(
                            info,
                            module,
                            node.lineno,
                            f"activity handle {verb} out of its governing finish "
                            f"(opened at line {c.lineno})",
                        )
        if not handles:
            continue
        for stmt in scope.body_statements():
            for node in ast.walk(stmt):
                if (
                    isinstance(node, ast.Name)
                    and isinstance(node.ctx, ast.Load)
                    and node.id in handles
                    and node.lineno > end
                ):
                    yield ctx.finding(
                        info,
                        module,
                        handles[node.id],
                        f"activity handle '{node.id}' escapes its governing finish "
                        f"(used at line {node.lineno}, finish ends at line {end})",
                    )
                    del handles[node.id]
                    if not handles:
                        break


# -- APG103 ----------------------------------------------------------------------

#: (module, function) pairs that block the OS thread — poison inside a
#: simulated activity, which must only yield virtual-time effects
_BLOCKING = {
    ("time", "sleep"),
    ("os", "system"),
    ("subprocess", "run"),
    ("subprocess", "call"),
    ("subprocess", "check_call"),
    ("subprocess", "check_output"),
    ("subprocess", "Popen"),
    ("socket", "create_connection"),
}


def _blocking_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Name) and func.id == "input":
        return "input()"
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and (func.value.id, func.attr) in _BLOCKING
    ):
        return f"{func.value.id}.{func.attr}()"
    return None


@rule("APG103", "blocking-call-in-activity", Severity.WARNING)
def blocking_call_in_activity(ctx: RuleContext, info: RuleInfo) -> Iterator[Finding]:
    """A real blocking call (time.sleep, subprocess, ...) inside an activity
    body stalls the whole cooperative simulator; use virtual-time effects
    like ``ctx.compute`` / ``ctx.sleep`` instead."""
    bodies: set[Scope] = set()
    for spawn in _all_spawns(ctx):
        if spawn.callee is not None:
            bodies.add(spawn.callee)
    seen: set[tuple[str, int]] = set()
    for body in sorted(bodies, key=lambda s: (s.module.path, s.node.lineno)):
        for stmt in body.body_statements():
            for node in ast.walk(stmt):
                if isinstance(node, ast.Call):
                    blocking = _blocking_name(node)
                    key = (body.module.path, node.lineno)
                    if blocking and key not in seen:
                        seen.add(key)
                        yield ctx.finding(
                            info,
                            body.module,
                            node.lineno,
                            f"{blocking} blocks the worker thread inside activity "
                            f"'{body.qualname}'; yield a virtual-time effect instead",
                        )


# -- APG104 ----------------------------------------------------------------------

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)


def _mutated_names(body: Scope) -> Iterator[tuple[str, int]]:
    """Names the body mutates through subscript assignment/deletion."""
    for stmt in body.body_statements():
        for node in ast.walk(stmt):
            targets: list = []
            if isinstance(node, ast.Assign):
                targets = node.targets
            elif isinstance(node, ast.AugAssign):
                targets = [node.target]
            elif isinstance(node, ast.Delete):
                targets = node.targets
            for t in targets:
                if isinstance(t, ast.Subscript) and isinstance(t.value, ast.Name):
                    yield t.value.id, node.lineno


@rule("APG104", "mutable-capture", Severity.WARNING)
def mutable_capture(ctx: RuleContext, info: RuleInfo) -> Iterator[Finding]:
    """A remotely spawned body mutates a mutable local captured from an
    enclosing function: on a real multi-place runtime that write happens in
    another address space and is lost (the simulator shares one heap, so the
    bug is silent here but real at scale)."""
    seen: set[tuple[str, int, str]] = set()
    for spawn in _all_spawns(ctx):
        if spawn.kind != "remote" or spawn.callee is None:
            continue
        body = spawn.callee
        for name, lineno in _mutated_names(body):
            if name in body.params or name in body.assigns:
                continue  # the body's own local
            bound = ctx.program.binding_scope(name, body)
            if bound is None:
                continue
            bscope, bexpr = bound
            if bscope.kind not in ("function", "lambda"):
                continue  # module-level state is out of scope for this rule
            if not isinstance(bexpr, _MUTABLE_LITERALS):
                continue
            key = (body.module.path, lineno, name)
            if key in seen:
                continue
            seen.add(key)
            yield ctx.finding(
                info,
                body.module,
                lineno,
                f"remote activity '{body.qualname}' mutates '{name}' captured "
                f"from enclosing scope '{bscope.qualname}' (spawned at "
                f"line {spawn.line}): cross-place race hazard",
            )


# -- APG105 ----------------------------------------------------------------------


def _with_loop_depth(c: SiteClassification) -> int:
    """Loop nesting of the finish ``with`` statement within its function."""
    found: list[int] = []

    def visit(node: ast.AST, depth: int) -> None:
        if found:
            return
        if node is c.site.with_node:
            found.append(depth)
            return
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            depth += 1
        elif isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
        ):
            return  # nested scopes are classified in their own right
        for child in ast.iter_child_nodes(node):
            visit(child, depth)

    for stmt in c.site.scope.body_statements():
        visit(stmt, 0)
    return found[0] if found else 0


@rule("APG105", "default-finish-in-hot-loop", Severity.WARNING)
def default_finish_in_hot_loop(ctx: RuleContext, info: RuleInfo) -> Iterator[Finding]:
    """A DEFAULT finish opened per loop iteration pays the full
    spawn-matrix protocol every time (the O(n^2) control-space hazard of
    paper section 3.1); annotate the specialized pragma the analyzer infers."""
    for c in ctx.classifications:
        if c.dynamic or c.effective_annotation is not Pragma.DEFAULT:
            continue
        if c.n_remote + c.n_local == 0:
            continue  # an empty finish in a loop costs little
        if _with_loop_depth(c) < 1:
            continue
        hint = (
            f"the analyzer suggests {c.suggestion.value} ({c.reason})"
            if c.suggestion is not Pragma.DEFAULT and c.confident
            else "annotate a specialized pragma or hoist the finish out of the loop"
        )
        yield ctx.finding(
            info,
            ctx.module(c.path),
            c.lineno,
            f"DEFAULT finish inside a loop re-pays full termination-detection "
            f"state per iteration; {hint}",
        )


# -- APG106 ----------------------------------------------------------------------


def _is_glbconfig(expr: ast.expr) -> bool:
    return (isinstance(expr, ast.Name) and expr.id == "GlbConfig") or (
        isinstance(expr, ast.Attribute) and expr.attr == "GlbConfig"
    )


@rule("APG106", "unbounded-glb-victims", Severity.WARNING)
def unbounded_glb_victims(ctx: RuleContext, info: RuleInfo) -> Iterator[Finding]:
    """GLB configured with an unbounded victim set: at scale every idle
    worker may target every other place, the all-to-all steal pattern the
    bounded-victims optimization exists to prevent."""
    for module in ctx.program.modules:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            for kw in node.keywords:
                if (
                    kw.arg == "max_victims"
                    and isinstance(kw.value, ast.Constant)
                    and kw.value.value is None
                ):
                    yield ctx.finding(
                        info,
                        module,
                        node.lineno,
                        "explicit max_victims=None configures an unbounded "
                        "victim set (all-to-all steals at scale)",
                    )
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr == "original"
                and _is_glbconfig(func.value)
                and not any(kw.arg == "max_victims" for kw in node.keywords)
            ):
                yield ctx.finding(
                    info,
                    module,
                    node.lineno,
                    "GlbConfig.original() disables the victim bound "
                    "(max_victims=None): unbounded steal fan-out at scale",
                )


# -- APG107 ----------------------------------------------------------------------

#: referencing any of these names counts as wiring up checkpoint/restore
_RESILIENT_MACHINERY = {
    "CheckpointHooks",
    "EpochCoordinator",
    "ResilientStore",
    "GlbResilience",
}


def _has_resilient_switch(node) -> bool:
    """True when the function takes a boolean ``resilient`` toggle.

    Parameters that *carry* resilience machinery (e.g. an Optional
    GlbResilience) rather than switch it on are not the rule's target.
    """
    args = node.args
    pos = list(args.posonlyargs) + list(args.args)
    defaults = [None] * (len(pos) - len(args.defaults)) + list(args.defaults)
    pairs = list(zip(pos, defaults)) + list(zip(args.kwonlyargs, args.kw_defaults))
    for a, default in pairs:
        if a.arg != "resilient":
            continue
        if isinstance(a.annotation, ast.Name) and a.annotation.id == "bool":
            return True
        if isinstance(default, ast.Constant) and isinstance(default.value, bool):
            return True
    return False


def _forwards_resilient(node) -> bool:
    """The body hands its ``resilient`` flag to someone else (a dispatcher)."""
    for stmt in node.body:
        for n in ast.walk(stmt):
            if isinstance(n, ast.Call) and any(
                kw.arg == "resilient" for kw in n.keywords
            ):
                return True
            if isinstance(n, ast.Assign):
                for t in n.targets:
                    if (
                        isinstance(t, ast.Subscript)
                        and isinstance(t.slice, ast.Constant)
                        and t.slice.value == "resilient"
                    ):
                        return True
    return False


def _names_used(node) -> set:
    used = set()
    for stmt in node.body:
        for n in ast.walk(stmt):
            if isinstance(n, ast.Name):
                used.add(n.id)
            elif isinstance(n, ast.Attribute):
                used.add(n.attr)
    return used


@rule("APG107", "resilient-without-hooks", Severity.WARNING)
def resilient_without_hooks(ctx: RuleContext, info: RuleInfo) -> Iterator[Finding]:
    """A kernel advertises a ``resilient`` switch but never touches the
    checkpoint machinery: under ``--resilient`` a place death still kills the
    whole run because nothing was ever snapshotted to the replicated store.
    References are followed through same-module helpers, so delegating the
    wiring to a ``_make_resilient_*`` factory stays clean."""
    for module in ctx.program.modules:
        toplevel = {
            n.name: n
            for n in module.tree.body
            if isinstance(n, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if not _has_resilient_switch(node) or _forwards_resilient(node):
                continue
            # transitive closure over same-module helpers the body references
            used = set()
            frontier = [node]
            visited = {node.name}
            while frontier:
                for name in _names_used(frontier.pop()):
                    used.add(name)
                    helper = toplevel.get(name)
                    if helper is not None and name not in visited:
                        visited.add(name)
                        frontier.append(helper)
            if used & _RESILIENT_MACHINERY:
                continue
            yield ctx.finding(
                info,
                module,
                node.lineno,
                f"'{node.name}' takes a 'resilient' parameter but registers no "
                "checkpoint/restore hooks (CheckpointHooks / EpochCoordinator / "
                "ResilientStore / GlbResilience): place deaths stay fatal",
            )


# -- APG108..APG110: determinacy-race rules over the MHP analysis ----------------
#
# These rules intersect the per-finish-site task groups of
# :class:`repro.analyze.mhp.MhpAnalysis` with the effect closure of each
# group, then demand *provability* before firing: level-0 accesses only (the
# task itself, so the executing place is known), constant store keys, and a
# place token that provably coincides.  Anything weaker stays silent — the
# dynamic vector-clock detector exists for the cases static analysis must
# refuse to judge.


def _place_token(group):
    """Where the group's level-0 accesses provably execute: ``"here"`` for
    the continuation and local spawns, ``("place", p)`` for a remote spawn
    with a literal destination, ``None`` when unprovable (loop-variable
    destinations and the like)."""
    if group.kind in ("continuation", "local"):
        return "here"
    spawn = group.spawn
    if spawn is not None and isinstance(spawn.dest, ast.Constant):
        return ("place", spawn.dest.value)
    return None


def _level0_store(group, op: str):
    """The group's own constant-key store accesses (not through ``ctx.at``)."""
    return [
        a
        for a in group.accesses
        if a.target == "store"
        and a.op == op
        and a.key is not None
        and a.level == 0
        and not a.via_at
    ]


@rule("APG108", "concurrent-store-write", Severity.ERROR)
def concurrent_store_write(ctx: RuleContext, info: RuleInfo) -> Iterator[Finding]:
    """Two may-happen-in-parallel tasks of one finish both write the same
    constant ``ctx.store`` key at a provably identical place — the scheduler
    picks the survivor, so the program is nondeterministic.  A spawn in an
    unguarded loop races its own sister instances the same way."""
    seen: set = set()
    for sg in ctx.mhp.site_groups():
        writes = []  # (group index, multi, place token, access)
        for gi, group in enumerate(sg.groups):
            token = _place_token(group)
            for acc in _level0_store(group, "write"):
                writes.append((gi, group.multi, token, acc))
        for i, (gia, ma, ta, aa) in enumerate(writes):
            if ta is None:
                continue
            where = "here" if ta == "here" else f"place {ta[1]}"
            if ma:
                key = (aa.path, aa.line, aa.key, "self")
                if key not in seen:
                    seen.add(key)
                    yield ctx.finding(
                        info,
                        ctx.module(aa.path),
                        aa.line,
                        f"store key {aa.key!r} is written at {where} by every "
                        f"instance of a loop-spawned activity (finish at line "
                        f"{sg.site.lineno}): last writer wins nondeterministically",
                    )
            for gib, mb, tb, ab in writes[i + 1 :]:
                if gib == gia or tb != ta or ab.key != aa.key:
                    continue
                key = (aa.path, aa.line, ab.path, ab.line, aa.key)
                if key in seen:
                    continue
                seen.add(key)
                yield ctx.finding(
                    info,
                    ctx.module(aa.path),
                    aa.line,
                    f"store key {aa.key!r} is written at {where} by two "
                    f"concurrent tasks of the finish at line {sg.site.lineno} "
                    f"(other write at {ab.line}): unsynchronized write-write race",
                )


@rule("APG109", "captured-mutable-race", Severity.WARNING)
def captured_mutable_race(ctx: RuleContext, info: RuleInfo) -> Iterator[Finding]:
    """Sibling *local* activities of one finish race on a mutable captured
    from an enclosing function: one writes while another reads or writes,
    with no happens-before edge between them.  (Remote captures are APG104's
    domain — on a real runtime they do not even share the heap.)"""
    seen: set = set()
    for sg in ctx.mhp.site_groups():
        by_binding: dict = {}  # (name, binding qualname) -> [(gi, multi, acc)]
        for gi, group in enumerate(sg.groups):
            if group.kind != "local":
                continue
            for acc in group.accesses:
                if (
                    acc.target == "captured"
                    and acc.level == 0
                    and not acc.via_at
                    and acc.binding is not None
                ):
                    by_binding.setdefault((acc.key, acc.binding), []).append(
                        (gi, group.multi, acc)
                    )
        for (name, _binding), entries in by_binding.items():
            groups_involved = {gi for gi, _, _ in entries}
            for gi, multi, acc in entries:
                if acc.op != "write":
                    continue
                if not multi and len(groups_involved) < 2:
                    continue  # one single-instance task mutating alone is fine
                key = (acc.path, acc.line, name)
                if key in seen:
                    continue
                seen.add(key)
                how = (
                    "every instance of a loop-spawned activity"
                    if multi
                    else "concurrent sibling activities"
                )
                yield ctx.finding(
                    info,
                    ctx.module(acc.path),
                    acc.line,
                    f"captured mutable '{name}' is mutated by {how} of the "
                    f"finish at line {sg.site.lineno} with no ordering between "
                    f"them: read/write race",
                )


def _body_evals(ctx: RuleContext, scope: Scope, depth: int = 0, stack=None) -> list:
    """``ctx.at`` evaluations a spawned body performs, following plain
    helper calls (depth- and cycle-guarded)."""
    if stack is None:
        stack = set()
    if depth > 8 or id(scope) in stack:
        return []
    stack.add(id(scope))
    try:
        events = ungoverned_events(scope, ctx.program)
        out = list(events.evals)
        for call in events.calls:
            out += _body_evals(ctx, call.target, depth + 1, stack)
    finally:
        stack.discard(id(scope))
    return out


@rule("APG110", "remote-rmw-unordered", Severity.WARNING)
def remote_rmw_unordered(ctx: RuleContext, info: RuleInfo) -> Iterator[Finding]:
    """An activity body uses ``ctx.at`` to read *and* write the same store
    key at a literal remote place, and the finish runs several such bodies
    concurrently: the read-modify-write interleaves across instances and
    updates are lost.  The same at-body called sequentially (or by a single
    activity) is fine — ordering comes from the activity itself."""
    seen: set = set()
    for sg in ctx.mhp.site_groups():
        rmws = []  # (group index, multi, dest literal, key, Eval)
        for gi, group in enumerate(sg.groups):
            spawn = group.spawn
            if spawn is None or spawn.callee is None:
                continue
            for ev in _body_evals(ctx, spawn.callee):
                if ev.callee is None or not isinstance(ev.dest, ast.Constant):
                    continue
                closure = ctx.mhp.effects.scope_accesses(ev.callee)
                own = [
                    a
                    for a in closure
                    if a.target == "store"
                    and a.key is not None
                    and a.level == 0
                    and not a.via_at
                ]
                read = {a.key for a in own if a.op == "read"}
                written = {a.key for a in own if a.op == "write"}
                for key in sorted(read & written, key=repr):
                    rmws.append((gi, group.multi, ev.dest.value, key, ev))
        for i, (gia, ma, da, ka, ea) in enumerate(rmws):
            conflict = ma or any(
                gib != gia and db == da and kb == ka
                for gib, _mb, db, kb, _eb in rmws[i + 1 :]
            )
            if not conflict:
                continue
            dedup = (ea.scope.module.path, ea.line, ka)
            if dedup in seen:
                continue
            seen.add(dedup)
            yield ctx.finding(
                info,
                ctx.module(ea.scope.module.path),
                ea.line,
                f"at-body '{ea.callee.qualname}' read-modify-writes store key "
                f"{ka!r} at place {da!r}; concurrent sibling activities of the "
                f"finish at line {sg.site.lineno} interleave the update "
                f"(lost-update race) — order them with a finish per round",
            )
