"""The analyzer driver: load sources, infer pragmas, run the rules."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.analyze.infer import classify_program
from repro.analyze.rules import Baseline, Finding, Severity, run_rules
from repro.analyze.sourcemodel import Program


@dataclass
class AnalyzeResult:
    """Everything one analyzer run produced."""

    program: Program
    sites: list  # SiteClassification, grouped by file in source order
    findings: list = field(default_factory=list)  # all surviving findings
    new_findings: list = field(default_factory=list)  # not in the baseline

    @property
    def gating(self) -> list:
        """New findings that should fail a CI gate (warning or worse)."""
        return [f for f in self.new_findings if f.severity >= Severity.WARNING]


def analyze_paths(
    paths: Iterable[str],
    baseline: Optional[Baseline] = None,
    codes: Optional[Iterable[str]] = None,
) -> AnalyzeResult:
    """Analyze files/directories and return sites + findings.

    Raises :class:`~repro.errors.AnalyzeError` on a missing path or
    unparsable source (the CLI maps that to exit code 2).
    """
    program = Program.from_paths(paths)
    sites = classify_program(program)
    findings: list[Finding] = run_rules(program, sites, codes=codes)
    new = baseline.new_findings(findings) if baseline is not None else list(findings)
    return AnalyzeResult(program=program, sites=sites, findings=findings, new_findings=new)
