"""Spawn-site and call-graph extraction over the APGAS surface.

The builder recognizes the spawning constructs of
:class:`~repro.runtime.activity.ActivityContext` — ``ctx.at_async(p, fn,
...)``, ``ctx.async_(fn, ...)`` and ``ctx.async_copy(...)`` — plus plain
calls to functions the :class:`~repro.analyze.sourcemodel.Program` can
resolve, so pragma inference can follow activity bodies across function
boundaries.  Spawns are partitioned by the innermost ``finish`` scope that
governs them *within one function*: a spawn under a nested ``with
ctx.finish(...)`` belongs to that nested finish, while everything else in a
spawned body is governed by whatever finish spawned it (the APGAS rule the
intraprocedural prototype could not see).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.analyze.sourcemodel import Program, Scope
from repro.runtime.finish.pragmas import Pragma

#: ActivityContext spawning methods and the fork kind each one creates
SPAWN_METHODS = {"at_async": "remote", "async_": "local", "async_copy": "copy"}


@dataclass
class Spawn:
    """One spawning call, lexically located."""

    kind: str  # "remote" | "local" | "copy"
    node: ast.Call
    scope: Scope  # the function the call appears in
    dest: Optional[ast.expr]  # destination place expression (remote only)
    callee_expr: Optional[ast.expr]
    callee: Optional[Scope]  # resolved body, when the Program can see it
    call_args: list  # arguments forwarded to the callee (after fn)
    loop_depth: int
    line: int
    #: interprocedural spawn level: 0 = directly under the finish, 1 = inside
    #: a spawned body, ... (filled in by the inference pass)
    level: int = 0
    #: the spawn sits under an ``if`` *inside* its loop, so the loop is not
    #: proof of multiple instances (e.g. ``if place == ctx.here:`` selecting
    #: one iteration); the MHP rules only treat unguarded loop spawns as
    #: provably self-parallel
    guarded: bool = False


@dataclass
class Eval:
    """One blocking remote evaluation ``ctx.at(place, fn, ...)``.

    Not a spawn — the activity shifts — but the MHP effect analysis needs it:
    the at-body's accesses happen at ``dest`` as part of the calling task.
    """

    node: ast.Call
    scope: Scope
    dest: Optional[ast.expr]
    callee_expr: Optional[ast.expr]
    callee: Optional[Scope]
    loop_depth: int
    line: int


@dataclass
class PlainCall:
    """A direct call to a resolvable function (``helper(...)``,
    ``yield from helper(...)``, ``self.method(...)``)."""

    target: Scope
    node: ast.Call
    loop_depth: int
    #: under an ``if`` inside its loop (see :attr:`Spawn.guarded`)
    guarded: bool = False


@dataclass
class FinishSiteNode:
    """One ``with ctx.finish(...)`` occurrence in the source."""

    with_node: ast.stmt  # ast.With or ast.AsyncWith
    item: ast.withitem
    scope: Scope
    lineno: int
    annotation: Optional[Pragma]  # literal Pragma.X argument, when present
    dynamic: bool  # an argument was present but is not a Pragma literal
    aliased: bool  # the context manager came through a name binding


@dataclass
class BodyEvents:
    """Everything relevant found in one governed region."""

    spawns: list = field(default_factory=list)
    calls: list = field(default_factory=list)
    #: ``ctx.at(...)`` evaluations — recorded at *any* finish depth (an at is
    #: not governed by a finish; the activity moves and comes back)
    evals: list = field(default_factory=list)
    #: an unresolvable call received a context argument and may hide spawns
    opaque: bool = False


def _finish_call(expr: ast.expr) -> Optional[ast.Call]:
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr == "finish"
    ):
        return expr
    return None


def _resolve_finish_item(item: ast.withitem, scope: Scope, program: Program):
    """(finish ``Call`` node, aliased) for a withitem, or (None, False)."""
    call = _finish_call(item.context_expr)
    if call is not None:
        return call, False
    if isinstance(item.context_expr, ast.Name):
        bound = program.binding_scope(item.context_expr.id, scope)
        if bound is not None:
            call = _finish_call(bound[1])
            if call is not None:
                return call, True
    return None, False


def _pragma_annotation(call: ast.Call) -> tuple[Optional[Pragma], bool]:
    """The literal ``Pragma.X`` argument of a finish call, if any."""
    arg: Optional[ast.expr] = None
    if call.args:
        arg = call.args[0]
    else:
        for kw in call.keywords:
            if kw.arg == "pragma":
                arg = kw.value
    if arg is None:
        return None, False
    if (
        isinstance(arg, ast.Attribute)
        and isinstance(arg.value, ast.Name)
        and arg.value.id == "Pragma"
    ):
        try:
            return Pragma[arg.attr], False
        except KeyError:
            return None, True
    return None, True


def finish_sites(scope: Scope, program: Program) -> list:
    """Every finish site lexically inside ``scope`` (nested defs excluded —
    they are their own scopes), in source order, walking *all* withitems and
    following context-manager aliases."""
    sites: list[FinishSiteNode] = []

    class V(ast.NodeVisitor):
        def visit_FunctionDef(self, node):  # do not descend
            pass

        visit_AsyncFunctionDef = visit_FunctionDef
        visit_Lambda = visit_FunctionDef
        visit_ClassDef = visit_FunctionDef

        def _with(self, node):
            for item in node.items:
                call, aliased = _resolve_finish_item(item, scope, program)
                if call is not None:
                    annotation, dynamic = _pragma_annotation(call)
                    sites.append(
                        FinishSiteNode(
                            with_node=node,
                            item=item,
                            scope=scope,
                            lineno=item.context_expr.lineno,
                            annotation=annotation,
                            dynamic=dynamic,
                            aliased=aliased,
                        )
                    )
            self.generic_visit(node)

        visit_With = _with
        visit_AsyncWith = _with

    visitor = V()
    for stmt in scope.body_statements():
        visitor.visit(stmt)
    return sites


def _is_context_name(name: str, scope: Scope) -> bool:
    """Heuristic: ``name`` is an activity-context parameter of an enclosing
    function (so passing it to an unresolvable call may hide spawns)."""
    s: Optional[Scope] = scope
    while s is not None:
        if s.kind in ("function", "lambda") and s.ctx_param == name:
            return True
        s = s.parent
    return False


def _passes_context(call: ast.Call, scope: Scope) -> bool:
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        if isinstance(arg, ast.Name) and _is_context_name(arg.id, scope):
            return True
    return False


class _EventWalker(ast.NodeVisitor):
    """Collect spawns and calls in one governed region of one function.

    ``finish_depth`` counts enclosing finish ``with`` blocks relative to the
    walk root; only depth-0 events are reported — spawns under a nested
    finish are governed by that finish, not by the region being analyzed.
    """

    def __init__(self, scope: Scope, program: Program) -> None:
        self.scope = scope
        self.program = program
        self.events = BodyEvents()
        self.loop_depth = 0
        self.finish_depth = 0
        self.guard_depth = 0  # `if` nesting inside the innermost loop

    # nested scopes are analyzed separately (their spawns belong to whoever
    # calls or spawns them)
    def visit_FunctionDef(self, node):
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef

    def _loop(self, node):
        self.loop_depth += 1
        saved_guard = self.guard_depth
        self.guard_depth = 0
        self.generic_visit(node)
        self.guard_depth = saved_guard
        self.loop_depth -= 1

    visit_For = _loop
    visit_AsyncFor = _loop
    visit_While = _loop

    def visit_If(self, node):
        if self.loop_depth == 0:
            self.generic_visit(node)
            return
        self.visit(node.test)
        self.guard_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        for stmt in node.orelse:
            self.visit(stmt)
        self.guard_depth -= 1

    def _with(self, node):
        is_finish = any(
            _resolve_finish_item(item, self.scope, self.program)[0] is not None
            for item in node.items
        )
        for item in node.items:
            self.visit(item.context_expr)
        if is_finish:
            self.finish_depth += 1
        for stmt in node.body:
            self.visit(stmt)
        if is_finish:
            self.finish_depth -= 1

    visit_With = _with
    visit_AsyncWith = _with

    def visit_Call(self, node: ast.Call) -> None:
        if self._record_eval(node) is None and self.finish_depth == 0:
            self._record(node)
        self.generic_visit(node)

    def _record_eval(self, node: ast.Call) -> Optional[Eval]:
        """``ctx.at(place, fn, ...)`` — receiver must be a context name (many
        unrelated objects have an ``.at`` attribute, e.g. numpy ufuncs)."""
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr == "at"
            and isinstance(func.value, ast.Name)
            and _is_context_name(func.value.id, self.scope)
        ):
            return None
        dest = node.args[0] if node.args else None
        callee_expr = node.args[1] if len(node.args) > 1 else None
        ev = Eval(
            node=node,
            scope=self.scope,
            dest=dest,
            callee_expr=callee_expr,
            callee=self._resolve_callee(callee_expr),
            loop_depth=self.loop_depth,
            line=node.lineno,
        )
        self.events.evals.append(ev)
        return ev

    def _record(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr in SPAWN_METHODS:
            kind = SPAWN_METHODS[func.attr]
            dest = callee_expr = None
            call_args: list = []
            if kind == "remote" and node.args:
                dest = node.args[0]
                callee_expr = node.args[1] if len(node.args) > 1 else None
                call_args = list(node.args[2:])
            elif kind == "local" and node.args:
                callee_expr = node.args[0]
                call_args = list(node.args[1:])
            callee = self._resolve_callee(callee_expr)
            self.events.spawns.append(
                Spawn(
                    kind=kind,
                    node=node,
                    scope=self.scope,
                    dest=dest,
                    callee_expr=callee_expr,
                    callee=callee,
                    call_args=call_args,
                    loop_depth=self.loop_depth,
                    line=node.lineno,
                    guarded=self.guard_depth > 0,
                )
            )
            return
        target = self._resolve_callee(func)
        if target is not None:
            self.events.calls.append(
                PlainCall(
                    target=target, node=node, loop_depth=self.loop_depth,
                    guarded=self.guard_depth > 0,
                )
            )
        elif _passes_context(node, self.scope):
            # an unresolvable call was handed an activity context: it may
            # spawn on our behalf, so classifications lose confidence
            self.events.opaque = True

    def _resolve_callee(self, expr: Optional[ast.expr]) -> Optional[Scope]:
        return resolve_callee(expr, self.scope, self.program)


def resolve_callee(expr: Optional[ast.expr], scope: Scope, program: Program) -> Optional[Scope]:
    """Resolve a call-target expression to a function scope, when possible:
    plain names, lambdas, ``self``/``cls`` methods, and dotted module-alias
    targets (``rt.helper`` after ``import repro.runtime as rt``)."""
    if expr is None:
        return None
    if isinstance(expr, ast.Name):
        return program.resolve_function(expr.id, scope)
    if isinstance(expr, ast.Lambda):
        return program.scope_of.get(expr)
    if isinstance(expr, ast.Attribute):
        if isinstance(expr.value, ast.Name) and expr.value.id in ("self", "cls"):
            return program.resolve_method(scope, expr.attr)
        return program.resolve_module_function(expr, scope)
    return None


def region_events(statements, scope: Scope, program: Program) -> BodyEvents:
    """Spawns/calls governed by the region's own finish context (depth 0)."""
    walker = _EventWalker(scope, program)
    for stmt in statements:
        walker.visit(stmt)
    return walker.events


def ungoverned_events(scope: Scope, program: Program) -> BodyEvents:
    """Spawns/calls in ``scope`` that are *not* under any finish ``with`` of
    this function — when the function runs as a spawned body, these are
    governed by the finish that spawned it."""
    return region_events(scope.body_statements(), scope, program)
