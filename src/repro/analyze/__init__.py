"""repro.analyze — whole-program APGAS static analyzer and lint framework.

Three layers:

- :mod:`repro.analyze.sourcemodel` / :mod:`repro.analyze.callgraph` — parse
  modules into lexical scopes and extract spawn sites and the call graph.
- :mod:`repro.analyze.infer` — interprocedural finish-pragma inference (the
  whole-program upgrade of the paper's prototype compiler analysis).
- :mod:`repro.analyze.rules` / :mod:`repro.analyze.apgas_rules` — the lint
  framework and the APGAS anti-pattern catalogue (APG101..APG110).
- :mod:`repro.analyze.effects` / :mod:`repro.analyze.mhp` — read/write
  effect extraction and the may-happen-in-parallel decomposition behind the
  determinacy-race rules (APG108..APG110).

:func:`analyze_paths` is the one-call entry point used by ``repro analyze``;
:mod:`repro.analyze.agreement` replays suggestions against the runtime's
fork validation on the shipped kernels, and
:mod:`repro.analyze.race_agreement` checks that every race the dynamic
vector-clock detector observes was statically predicted.
"""

from repro.analyze.agreement import check_agreement, record_finish_sites, replay
from repro.analyze.driver import AnalyzeResult, analyze_paths
from repro.analyze.effects import Access, EffectIndex
from repro.analyze.infer import Inference, SiteClassification, classify_program
from repro.analyze.mhp import MhpAnalysis
from repro.analyze.race_agreement import RaceAgreement, check_race_agreement
from repro.analyze.rules import (
    REGISTRY,
    Baseline,
    Finding,
    Severity,
    rule,
    run_rules,
)
from repro.analyze.sourcemodel import Program, iter_python_files

__all__ = [
    "Access",
    "AnalyzeResult",
    "Baseline",
    "EffectIndex",
    "Finding",
    "Inference",
    "MhpAnalysis",
    "Program",
    "RaceAgreement",
    "REGISTRY",
    "Severity",
    "SiteClassification",
    "analyze_paths",
    "check_agreement",
    "check_race_agreement",
    "classify_program",
    "iter_python_files",
    "record_finish_sites",
    "replay",
    "rule",
    "run_rules",
]
