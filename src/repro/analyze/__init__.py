"""repro.analyze — whole-program APGAS static analyzer and lint framework.

Three layers:

- :mod:`repro.analyze.sourcemodel` / :mod:`repro.analyze.callgraph` — parse
  modules into lexical scopes and extract spawn sites and the call graph.
- :mod:`repro.analyze.infer` — interprocedural finish-pragma inference (the
  whole-program upgrade of the paper's prototype compiler analysis).
- :mod:`repro.analyze.rules` / :mod:`repro.analyze.apgas_rules` — the lint
  framework and the APGAS anti-pattern catalogue (APG101..APG106).

:func:`analyze_paths` is the one-call entry point used by ``repro analyze``;
:mod:`repro.analyze.agreement` replays suggestions against the runtime's
fork validation on the shipped kernels.
"""

from repro.analyze.agreement import check_agreement, record_finish_sites, replay
from repro.analyze.driver import AnalyzeResult, analyze_paths
from repro.analyze.infer import Inference, SiteClassification, classify_program
from repro.analyze.rules import (
    REGISTRY,
    Baseline,
    Finding,
    Severity,
    rule,
    run_rules,
)
from repro.analyze.sourcemodel import Program, iter_python_files

__all__ = [
    "AnalyzeResult",
    "Baseline",
    "Finding",
    "Inference",
    "Program",
    "REGISTRY",
    "Severity",
    "SiteClassification",
    "analyze_paths",
    "check_agreement",
    "classify_program",
    "iter_python_files",
    "record_finish_sites",
    "replay",
    "rule",
    "run_rules",
]
