"""The lint-rule framework: registry, severities, suppression, baseline.

Rules are small functions registered with the :func:`rule` decorator.  Each
receives a :class:`RuleContext` (the analyzed :class:`Program` plus every
finish-site classification) and yields :class:`Finding` objects.  The driver
then applies per-line suppression comments (``# noqa`` or ``# noqa:
APG104``) and the findings baseline — a committed JSON file of fingerprints
for findings that are acknowledged but not yet fixed, so CI gates only on
*new* findings.

Fingerprints are line-number independent (rule code + file + stripped source
text), so unrelated edits above a baselined finding do not resurrect it.
"""

from __future__ import annotations

import enum
import json
import os
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional

from repro.analyze.sourcemodel import Program, SourceModule
from repro.errors import AnalyzeError


class Severity(enum.IntEnum):
    """Finding severity; only WARNING and above affect the exit code."""

    NOTE = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        return self.name.lower()


@dataclass
class Finding:
    """One rule violation at one source line."""

    rule: str
    severity: Severity
    path: str
    lineno: int
    message: str
    source: str  # the offending source line, stripped

    @property
    def fingerprint(self) -> str:
        path = os.path.relpath(self.path).replace(os.sep, "/")
        return f"{self.rule}::{path}::{self.source}"

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.label,
            "path": os.path.relpath(self.path).replace(os.sep, "/"),
            "line": self.lineno,
            "message": self.message,
            "source": self.source,
            "fingerprint": self.fingerprint,
        }


@dataclass(frozen=True)
class RuleInfo:
    """A registered lint rule."""

    code: str  # e.g. "APG101"
    name: str  # kebab-case, e.g. "pragma-mismatch"
    severity: Severity
    doc: str
    fn: Callable


#: code -> RuleInfo, populated by the @rule decorator
REGISTRY: dict[str, RuleInfo] = {}


def rule(code: str, name: str, severity: Severity):
    """Register a rule function ``fn(ctx) -> Iterable[Finding]``."""

    def deco(fn: Callable) -> Callable:
        if code in REGISTRY:
            raise AnalyzeError(f"duplicate rule code {code}")
        REGISTRY[code] = RuleInfo(code, name, severity, (fn.__doc__ or "").strip(), fn)
        return fn

    return deco


class RuleContext:
    """Everything a rule may inspect."""

    def __init__(self, program: Program, classifications: list) -> None:
        self.program = program
        #: every SiteClassification, all modules, source order per module
        self.classifications = classifications
        self._by_path = {m.path: m for m in program.modules}
        self._mhp = None

    @property
    def mhp(self):
        """Lazily-built :class:`repro.analyze.mhp.MhpAnalysis` shared across
        the race rules (APG108..APG110)."""
        if self._mhp is None:
            from repro.analyze.mhp import MhpAnalysis

            self._mhp = MhpAnalysis(self.program)
        return self._mhp

    def module(self, path: str) -> Optional[SourceModule]:
        return self._by_path.get(path)

    def finding(
        self, info: RuleInfo, module: SourceModule, lineno: int, message: str
    ) -> Finding:
        return Finding(
            rule=info.code,
            severity=info.severity,
            path=module.path,
            lineno=lineno,
            message=message,
            source=module.line(lineno).strip(),
        )


# -- suppression -----------------------------------------------------------------

_NOQA_RE = re.compile(r"#\s*noqa(?::\s*(?P<codes>[A-Z0-9,\s]+))?", re.IGNORECASE)


def is_suppressed(finding: Finding, module: SourceModule) -> bool:
    """True when the finding's line carries a matching ``# noqa`` comment."""
    m = _NOQA_RE.search(module.line(finding.lineno))
    if m is None:
        return False
    codes = m.group("codes")
    if codes is None:
        return True  # bare `# noqa` silences every rule on the line
    wanted = {c.strip().upper() for c in codes.split(",") if c.strip()}
    return finding.rule.upper() in wanted


def run_rules(
    program: Program, classifications: list, codes: Optional[Iterable[str]] = None
) -> list:
    """Run every registered rule (or the subset ``codes``) and return the
    surviving findings, suppressions applied, sorted by location."""
    # rule modules register themselves on import
    import repro.analyze.apgas_rules  # noqa: F401

    ctx = RuleContext(program, classifications)
    selected = set(codes) if codes is not None else None
    findings: list[Finding] = []
    for code in sorted(REGISTRY):
        if selected is not None and code not in selected:
            continue
        info = REGISTRY[code]
        findings.extend(info.fn(ctx, info))
    out = []
    for f in findings:
        module = ctx.module(f.path)
        if module is not None and is_suppressed(f, module):
            continue
        out.append(f)
    out.sort(key=lambda f: (f.path, f.lineno, f.rule))
    return out


# -- baseline --------------------------------------------------------------------


@dataclass
class Baseline:
    """The committed set of acknowledged finding fingerprints."""

    fingerprints: set = field(default_factory=set)
    path: Optional[str] = None

    @classmethod
    def load(cls, path: str) -> "Baseline":
        if not os.path.exists(path):
            return cls(set(), path)
        try:
            with open(path, encoding="utf-8") as fh:
                doc = json.load(fh)
        except (OSError, ValueError) as exc:
            raise AnalyzeError(f"cannot read baseline {path}: {exc}") from None
        if not isinstance(doc, dict) or not isinstance(doc.get("findings"), list):
            raise AnalyzeError(f"malformed baseline {path}: expected a findings list")
        return cls({str(f) for f in doc["findings"]}, path)

    def write(self, path: str, findings: list) -> None:
        doc = {
            "comment": "acknowledged repro-analyze findings; regenerate with "
            "`repro analyze ... --write-baseline`",
            "findings": sorted({f.fingerprint for f in findings}),
        }
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, indent=2, sort_keys=True)
            fh.write("\n")

    def new_findings(self, findings: list) -> list:
        return [f for f in findings if f.fingerprint not in self.fingerprints]
