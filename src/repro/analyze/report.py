"""Text and JSON reporters for analyzer results."""

from __future__ import annotations

import json
import os
from typing import TextIO

from repro.analyze.rules import REGISTRY, Severity


def _rel(path: str) -> str:
    return os.path.relpath(path).replace(os.sep, "/")


def render_sites(result, out: TextIO) -> None:
    """One line per classified finish site."""
    for c in result.sites:
        ann = ""
        if c.dynamic:
            ann = " [annotated: dynamic]"
        elif c.annotation is not None:
            ann = f" [annotated: {c.annotation.value}]"
        conf = "" if c.confident else " (low confidence)"
        out.write(
            f"{_rel(c.path)}:{c.lineno}: {c.qualname}: "
            f"suggests {c.suggestion.value}{conf} -- {c.reason}{ann}\n"
        )


def render_text(result, out: TextIO, show_sites: bool = False) -> None:
    if show_sites:
        render_sites(result, out)
        if result.sites:
            out.write("\n")
    for f in result.new_findings:
        info = REGISTRY.get(f.rule)
        name = f" [{info.name}]" if info else ""
        out.write(
            f"{_rel(f.path)}:{f.lineno}: {f.rule} {f.severity.label}: "
            f"{f.message}{name}\n"
        )
    baselined = len(result.findings) - len(result.new_findings)
    gating = [f for f in result.new_findings if f.severity >= Severity.WARNING]
    summary = (
        f"{len(result.sites)} finish site(s) analyzed, "
        f"{len(result.new_findings)} finding(s)"
    )
    if baselined:
        summary += f" ({baselined} baselined)"
    out.write(summary + "\n")
    if not gating:
        out.write("analyze: clean\n")


def render_json(result) -> dict:
    return {
        "files": sorted(_rel(m.path) for m in result.program.modules),
        "sites": [
            {
                "path": _rel(c.path),
                "line": c.lineno,
                "function": c.qualname,
                "suggestion": c.suggestion.value,
                "reason": c.reason,
                "confident": c.confident,
                "annotation": None
                if c.annotation is None
                else c.annotation.value,
                "dynamic": c.dynamic,
            }
            for c in result.sites
        ],
        "findings": [
            dict(f.to_dict(), new=(f in result.new_findings))
            for f in result.findings
        ],
    }


def write_json(result, out: TextIO) -> None:
    json.dump(render_json(result), out, indent=2, sort_keys=True)
    out.write("\n")
