"""Read/write effect extraction: ``ctx.store`` keys and captured mutables.

The MHP rules need to know, for every task a finish site can run, *what that
task touches*: which ``ctx.store`` keys it reads or writes (statically, the
constant-string keys — f-string keys degrade to "some key", which the rules
then refuse to judge) and which mutable locals of an enclosing function it
captures and mutates.  :class:`EffectIndex` computes a memoized transitive
closure per function scope:

* direct accesses in the body,
* accesses of plain-called helpers (same task, same level),
* accesses of ``ctx.at`` bodies (same task, but executing at the at's
  destination — marked ``via_at`` so place-sensitive rules skip them),
* accesses of spawned sub-bodies (``level + 1`` — a *different* task whose
  accesses are concurrent with the enclosing task's siblings).

Levels let the MHP analysis over-approximate correctly: a level-0 access is
performed by the task itself, a level>=1 access by some descendant activity
that may still be running while siblings of the task execute.
"""

from __future__ import annotations

import ast
import dataclasses
from dataclasses import dataclass
from typing import Optional

from repro.analyze.callgraph import region_events, resolve_callee
from repro.analyze.sourcemodel import Program, Scope

#: expressions whose value is a mutable container (the captured-mutable model
#: shared with APG104/APG109)
MUTABLE_LITERALS = (
    ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp,
)

#: container methods that mutate their receiver
_MUTATING_METHODS = frozenset({
    "append", "extend", "insert", "add", "update", "setdefault", "pop",
    "popitem", "remove", "discard", "clear", "sort", "reverse",
})

#: ``ctx.store.<method>()`` effect classes
_STORE_READ = frozenset({"get", "keys", "items", "values"})
_STORE_RW = frozenset({"setdefault", "pop"})
_STORE_WRITE = frozenset({"update", "clear"})


@dataclass(frozen=True)
class Access:
    """One static store/captured-mutable access."""

    path: str
    line: int
    op: str                     #: "read" | "write"
    target: str                 #: "store" | "captured"
    key: Optional[object]       #: constant store key / captured name; None = unknown
    level: int = 0              #: 0 = the task itself; n = n spawns below it
    via_at: bool = False        #: reached through a ``ctx.at`` body (place shifts)
    binding: Optional[str] = None  #: captured only: qualname of the binding scope

    def coords(self) -> tuple:
        return (self.path, self.line)


def mutable_captures(scope: Scope, program: Program) -> dict[str, str]:
    """Names free in ``scope`` that an enclosing *function* scope binds to a
    mutable literal: name -> binding scope qualname."""
    out: dict[str, str] = {}
    seen: set[str] = set()
    for stmt in scope.body_statements():
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name) and node.id not in seen:
                seen.add(node.id)
                if node.id in scope.params:
                    continue
                enclosing = scope.parent
                if enclosing is None:
                    continue
                bound = program.binding_scope(node.id, enclosing)
                if (
                    bound is not None
                    and bound[0].kind in ("function", "lambda")
                    and isinstance(bound[1], MUTABLE_LITERALS)
                ):
                    out[node.id] = f"{bound[0].module.path}:{bound[0].qualname}"
    return out


def _store_attr(expr: ast.expr, ctx_name: Optional[str]) -> bool:
    """True when ``expr`` is ``<ctx>.store``."""
    return (
        ctx_name is not None
        and isinstance(expr, ast.Attribute)
        and expr.attr == "store"
        and isinstance(expr.value, ast.Name)
        and expr.value.id == ctx_name
    )


def _const_key(expr: Optional[ast.expr]):
    if isinstance(expr, ast.Constant) and isinstance(expr.value, (str, int)):
        return expr.value
    return None


class _DirectWalker(ast.NodeVisitor):
    """Direct accesses + governed structure of one statement region.

    Nested function definitions are skipped (their accesses belong to whoever
    calls or spawns them); nested finish blocks are *descended* — this walker
    only collects accesses and leaves concurrency structure to the caller.
    """

    def __init__(self, scope: Scope, program: Program) -> None:
        self.scope = scope
        self.program = program
        self.ctx_name = scope.ctx_param
        self.captures = mutable_captures(scope, program)
        self.accesses: list[Access] = []
        self.path = scope.module.path

    def visit_FunctionDef(self, node):  # separate scopes
        pass

    visit_AsyncFunctionDef = visit_FunctionDef
    visit_Lambda = visit_FunctionDef
    visit_ClassDef = visit_FunctionDef

    def _add(self, line: int, op: str, target: str, key, binding=None) -> None:
        self.accesses.append(
            Access(self.path, line, op, target, key, binding=binding)
        )

    # -- ctx.store ------------------------------------------------------------

    def visit_Subscript(self, node: ast.Subscript) -> None:
        if _store_attr(node.value, self.ctx_name):
            key = _const_key(node.slice)
            if isinstance(node.ctx, ast.Load):
                self._add(node.lineno, "read", "store", key)
            else:  # Store or Del
                self._add(node.lineno, "write", "store", key)
        elif (
            isinstance(node.value, ast.Name)
            and node.value.id in self.captures
        ):
            name = node.value.id
            op = "read" if isinstance(node.ctx, ast.Load) else "write"
            self._add(node.lineno, op, "captured", name, self.captures[name])
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        # the Store-context target only yields a "write"; an augmented
        # assignment also reads the old value
        target = node.target
        if isinstance(target, ast.Subscript):
            if _store_attr(target.value, self.ctx_name):
                self._add(node.lineno, "read", "store", _const_key(target.slice))
            elif (
                isinstance(target.value, ast.Name)
                and target.value.id in self.captures
            ):
                name = target.value.id
                self._add(node.lineno, "read", "captured", name, self.captures[name])
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if isinstance(func, ast.Attribute):
            if _store_attr(func.value, self.ctx_name):
                key = _const_key(node.args[0]) if node.args else None
                method = func.attr
                if method in _STORE_READ:
                    self._add(node.lineno, "read", "store", key)
                elif method in _STORE_RW:
                    self._add(node.lineno, "read", "store", key)
                    self._add(node.lineno, "write", "store", key)
                elif method in _STORE_WRITE:
                    self._add(node.lineno, "write", "store", key)
            elif (
                isinstance(func.value, ast.Name)
                and func.value.id in self.captures
            ):
                name = func.value.id
                op = "write" if func.attr in _MUTATING_METHODS else "read"
                self._add(node.lineno, op, "captured", name, self.captures[name])
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        # ``key in ctx.store``
        if any(
            _store_attr(comp, self.ctx_name) for comp in node.comparators
        ) and any(isinstance(op, (ast.In, ast.NotIn)) for op in node.ops):
            self._add(node.lineno, "read", "store", _const_key(node.left))
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if node.id in self.captures and isinstance(node.ctx, ast.Load):
            self._add(
                node.lineno, "read", "captured", node.id, self.captures[node.id]
            )


def _direct_accesses(statements, scope: Scope, program: Program) -> list[Access]:
    walker = _DirectWalker(scope, program)
    for stmt in statements:
        walker.visit(stmt)
    return walker.accesses


def _shift(accesses, delta_level: int = 0, via_at: bool = False) -> list[Access]:
    if delta_level == 0 and not via_at:
        return list(accesses)
    out = []
    for acc in accesses:
        out.append(
            dataclasses.replace(
                acc,
                level=acc.level + delta_level,
                via_at=acc.via_at or via_at,
            )
        )
    return out


class EffectIndex:
    """Memoized transitive access closure per function scope."""

    #: interprocedural depth guard, matching the inference engine's
    MAX_DEPTH = 8

    def __init__(self, program: Program) -> None:
        self.program = program
        self._cache: dict[int, list[Access]] = {}
        self._stack: set[int] = set()

    def scope_accesses(self, scope: Scope) -> list[Access]:
        """Everything ``scope`` may touch when run as an activity body:
        direct + helpers + at-bodies + spawned sub-bodies (level >= 1)."""
        key = id(scope)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        if key in self._stack or len(self._stack) > self.MAX_DEPTH:
            return []  # recursion: the fixpoint contribution is already counted
        self._stack.add(key)
        try:
            out = self.region_accesses(
                scope.body_statements(), scope, include_spawns=True
            )
        finally:
            self._stack.discard(key)
        self._cache[key] = out
        return out

    def region_accesses(
        self, statements, scope: Scope, include_spawns: bool
    ) -> list[Access]:
        """Access closure of a statement region of ``scope``.

        ``include_spawns=False`` is the finish-site continuation view: spawns
        *directly* governed by the region's own finish are excluded (they are
        the sibling task groups), but spawns under a finish nested inside the
        region still contribute at level >= 1 — until that nested scope's
        wait, they run concurrently with the outer siblings.
        """
        out = _direct_accesses(statements, scope, self.program)
        events = region_events(statements, scope, self.program)
        # region_events reports only finish-depth-0 spawns/calls; fold in the
        # regions of nested finish blocks so the closure sees *everything*
        nested_spawns, nested_calls = self._nested_events(statements, scope)
        for call in list(events.calls) + nested_calls:
            out += self.scope_accesses(call.target)
        for ev in events.evals:  # evals are recorded at any finish depth
            if ev.callee is not None:
                out += _shift(self.scope_accesses(ev.callee), via_at=True)
        spawns = nested_spawns
        if include_spawns:
            spawns = spawns + list(events.spawns)
        for spawn in spawns:
            if spawn.callee is not None:
                out += _shift(self.scope_accesses(spawn.callee), delta_level=1)
        return out

    def _nested_events(self, statements, scope: Scope) -> tuple[list, list]:
        """Spawns and calls governed by finish blocks nested in the region."""
        from repro.analyze.callgraph import finish_sites

        in_region = {
            id(node) for stmt in statements for node in ast.walk(stmt)
        }
        spawns: list = []
        calls: list = []
        for site in finish_sites(scope, self.program):
            if id(site.with_node) in in_region:
                ev = region_events(site.with_node.body, site.scope, self.program)
                spawns.extend(ev.spawns)
                calls.extend(ev.calls)
        return spawns, calls
