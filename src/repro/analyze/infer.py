"""Interprocedural finish-pragma inference.

This is the whole-program upgrade of the intraprocedural prototype in
:mod:`repro.runtime.finish.analysis` (which now delegates here).  For every
``with ctx.finish(...)`` site the analyzer gathers the *governed closure*:
the spawns lexically under the finish, plus — following the call graph —
the spawns of every plain-called helper, plus (recursively) the ungoverned
spawns of every spawned body.  That last step is exactly what the
intraprocedural version documented as invisible: the return leg of a
FINISH_HERE round trip lives in the spawned body, one function boundary
away.

A suggestion is *confident* when every body in the closure was resolved; a
spawn whose callee the program cannot see (a function-valued parameter, a
call into an unanalyzed module that received the activity context) degrades
the site to a best-effort suggestion with ``confident=False``.  Suggestions
are never silently wrong at runtime either way — every specialized finish
validates its forks and raises :class:`~repro.errors.PragmaError`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Iterator, Optional

from repro.analyze.callgraph import (
    FinishSiteNode,
    Spawn,
    finish_sites,
    region_events,
    ungoverned_events,
)
from repro.analyze.sourcemodel import Program, Scope, SourceModule
from repro.runtime.finish.pragmas import Pragma


@dataclass
class Eff:
    """One spawn in a governed closure, with composed loop depth and the
    interprocedural level it was found at (0 = under the finish itself)."""

    kind: str  # "remote" | "local" | "copy"
    loop: int
    level: int
    spawn: Spawn


@dataclass
class SiteClassification:
    """The analyzer's verdict for one finish site."""

    path: str
    qualname: str  # function containing the site
    lineno: int
    suggestion: Pragma
    reason: str
    confident: bool
    annotation: Optional[Pragma]  # literal Pragma.X at the site, if any
    dynamic: bool  # a non-literal pragma argument was present
    aliased: bool
    site: FinishSiteNode
    # summary facts about the governed closure, for the lint rules
    n_remote: int = 0  # direct remote/copy spawns under the finish
    n_local: int = 0  # direct local spawns under the finish
    max_loop: int = 0  # deepest loop nesting of any direct spawn
    spawning_children: bool = False  # some spawned body provably spawns further
    remote_dests_home: bool = False  # every remote dest is provably ctx.here

    @property
    def effective_annotation(self) -> Optional[Pragma]:
        """The pragma the site will run with, when statically known."""
        if self.dynamic:
            return None
        return self.annotation if self.annotation is not None else Pragma.DEFAULT


def iter_function_scopes(program: Program, module: SourceModule) -> Iterator[Scope]:
    """Every function/lambda scope of ``module``, outermost first."""

    def walk(scope: Scope) -> Iterator[Scope]:
        for child in scope.functions.values():
            if child.kind in ("function", "lambda"):
                yield child
            yield from walk(child)

    yield from walk(program.module_scope[module.path])


class Inference:
    """Memoized closure computation + per-site classification."""

    def __init__(self, program: Program) -> None:
        self.program = program
        self._flat: dict[Scope, tuple[list, bool]] = {}
        self._deep: dict[Scope, tuple[list, bool]] = {}
        # separate cycle guards: deep(X) legitimately calls flat(X)
        self._flat_stack: set[Scope] = set()
        self._deep_stack: set[Scope] = set()

    # -- closures ---------------------------------------------------------------

    def flat(self, scope: Scope) -> tuple[list, bool]:
        """Ungoverned spawns of ``scope`` including plain-called helpers."""
        cached = self._flat.get(scope)
        if cached is not None:
            return cached
        if scope in self._flat_stack:
            return ([], False)  # recursion: the fixpoint contributes nothing new
        self._flat_stack.add(scope)
        try:
            ev = ungoverned_events(scope, self.program)
            effs = [Eff(s.kind, s.loop_depth, 0, s) for s in ev.spawns]
            opaque = ev.opaque
            for call in ev.calls:
                sub, sub_opaque = self.flat(call.target)
                opaque = opaque or sub_opaque
                effs.extend(Eff(e.kind, e.loop + call.loop_depth, 0, e.spawn) for e in sub)
        finally:
            self._flat_stack.discard(scope)
        self._flat[scope] = (effs, opaque)
        return effs, opaque

    def deep(self, scope: Scope) -> tuple[list, bool]:
        """``flat`` plus, recursively, the closures of every spawned body."""
        cached = self._deep.get(scope)
        if cached is not None:
            return cached
        if scope in self._deep_stack:
            return ([], False)
        self._deep_stack.add(scope)
        try:
            effs, opaque = self.flat(scope)
            out = list(effs)
            for e in effs:
                if e.spawn.kind == "copy":
                    continue  # an RDMA copy has no body to descend into
                if e.spawn.callee is None:
                    opaque = True  # unknown body may spawn anything
                    continue
                sub, sub_opaque = self.deep(e.spawn.callee)
                opaque = opaque or sub_opaque
                out.extend(Eff(x.kind, x.loop, x.level + e.level + 1, x.spawn) for x in sub)
        finally:
            self._deep_stack.discard(scope)
        self._deep[scope] = (out, opaque)
        return out, opaque

    # -- the home test (FINISH_HERE) --------------------------------------------

    def _is_home_expr(
        self, expr, occ_scope: Scope, outer: Spawn, site: FinishSiteNode, depth: int = 0
    ) -> bool:
        """Does ``expr`` (a spawn destination inside the spawned body)
        denote the finish home — the ``ctx.here`` of the site's function?"""
        if depth > 4 or expr is None:
            return False
        ctx_param = site.scope.ctx_param
        if (
            isinstance(expr, ast.Attribute)
            and expr.attr == "here"
            and isinstance(expr.value, ast.Name)
        ):
            # `ctx.here` is home only when evaluated in the site function
            return occ_scope is site.scope and expr.value.id == ctx_param
        if not isinstance(expr, ast.Name):
            return False
        name = expr.id
        callee = outer.callee
        if callee is not None and name in callee.params:
            # a parameter of the spawned body: map back to the call-site
            # argument (arguments after the body function line up with the
            # parameters after the context)
            idx = callee.params.index(name)
            if idx >= 1 and idx - 1 < len(outer.call_args):
                arg = outer.call_args[idx - 1]
                return self._is_home_expr(arg, site.scope, outer, site, depth + 1)
            return False
        bound = self.program.binding_scope(name, occ_scope)
        if bound is None:
            return False
        bscope, bexpr = bound
        return (
            bscope is site.scope
            and isinstance(bexpr, ast.Attribute)
            and bexpr.attr == "here"
            and isinstance(bexpr.value, ast.Name)
            and bexpr.value.id == ctx_param
        )

    # -- classification -----------------------------------------------------------

    def classify_site(self, site: FinishSiteNode) -> SiteClassification:
        ev = region_events(site.with_node.body, site.scope, self.program)
        opaque = ev.opaque
        direct: list[Eff] = [Eff(s.kind, s.loop_depth, 0, s) for s in ev.spawns]
        for call in ev.calls:
            sub, sub_opaque = self.flat(call.target)
            opaque = opaque or sub_opaque
            direct.extend(Eff(e.kind, e.loop + call.loop_depth, 0, e.spawn) for e in sub)

        def child_closure(eff: Eff) -> tuple[Optional[list], bool]:
            if eff.spawn.kind == "copy":
                return [], False
            if eff.spawn.callee is None:
                return None, True
            return self.deep(eff.spawn.callee)

        remote = [e for e in direct if e.kind in ("remote", "copy")]
        local = [e for e in direct if e.kind == "local"]

        # summary facts for the lint rules (pragma-mismatch and friends)
        stats = {
            "n_remote": len(remote),
            "n_local": len(local),
            "max_loop": max((e.loop for e in direct), default=0),
            "spawning_children": any(
                bool(child_closure(e)[0]) for e in direct if e.spawn.kind != "copy"
            ),
            "remote_dests_home": bool(remote)
            and all(e.kind == "remote" for e in remote)
            and all(
                self._is_home_expr(e.spawn.dest, site.scope, e.spawn, site)
                for e in remote
            ),
        }

        def verdict(suggestion: Pragma, reason: str, confident: bool) -> SiteClassification:
            return SiteClassification(
                path=site.scope.module.path,
                qualname=site.scope.qualname,
                lineno=site.lineno,
                suggestion=suggestion,
                reason=reason,
                confident=confident,
                annotation=site.annotation,
                dynamic=site.dynamic,
                aliased=site.aliased,
                site=site,
                **stats,
            )

        if not direct:
            return verdict(Pragma.DEFAULT, "no spawns under this finish", not opaque)

        if not remote:
            child_opaque = False
            any_remote = False
            for e in local:
                sub, sub_opaque = child_closure(e)
                child_opaque = child_opaque or sub_opaque
                if sub:
                    any_remote = any_remote or any(
                        x.kind in ("remote", "copy") for x in sub
                    )
            if any_remote:
                return verdict(
                    Pragma.DEFAULT,
                    "local asyncs whose bodies spawn remote subactivities",
                    not opaque,
                )
            return verdict(
                Pragma.FINISH_LOCAL,
                "only local asyncs (transitively)",
                not (opaque or child_opaque),
            )

        if local:
            return verdict(
                Pragma.DEFAULT, "mixed local and remote asyncs", not opaque
            )

        max_loop = max(e.loop for e in remote)

        if len(remote) == 1 and max_loop == 0:
            e = remote[0]
            sub, child_opaque = child_closure(e)
            if sub is None:
                return verdict(
                    Pragma.FINISH_ASYNC, "a single remote async (body not resolved)", False
                )
            if not sub:
                return verdict(
                    Pragma.FINISH_ASYNC,
                    "a single remote async whose body spawns nothing further",
                    not (opaque or child_opaque),
                )
            if (
                len(sub) == 1
                and sub[0].kind == "remote"
                and sub[0].loop == 0
                and sub[0].level == 0
                and self._is_home_expr(sub[0].spawn.dest, sub[0].spawn.scope, e.spawn, site)
            ):
                ret_sub, ret_opaque = child_closure(sub[0])
                if ret_sub == []:
                    return verdict(
                        Pragma.FINISH_HERE,
                        "a round trip: one remote async whose body sends one "
                        "async back to the home place",
                        not (opaque or child_opaque or ret_opaque),
                    )
            return verdict(
                Pragma.DEFAULT,
                "a remote async whose body spawns further activities",
                not (opaque or child_opaque),
            )

        # multiple remote asyncs (statically or through loops)
        child_opaque = False
        spawning_children = False
        for e in remote:
            sub, sub_opaque = child_closure(e)
            child_opaque = child_opaque or sub_opaque
            if sub:
                spawning_children = True
        if max_loop >= 2:
            return verdict(
                Pragma.FINISH_DENSE,
                "remote asyncs inside nested place loops (dense communication graph)",
                not (opaque or child_opaque),
            )
        if spawning_children:
            return verdict(
                Pragma.FINISH_DENSE,
                "spawned bodies spawn further activities (irregular communication graph)",
                not (opaque or child_opaque),
            )
        if max_loop >= 1:
            return verdict(
                Pragma.FINISH_SPMD,
                "one remote async per place in a loop, none spawning further",
                not (opaque or child_opaque),
            )
        return verdict(
            Pragma.FINISH_SPMD,
            "a static set of remote asyncs, none spawning further",
            not (opaque or child_opaque),
        )

    def classify_scope(self, scope: Scope) -> list:
        return [self.classify_site(s) for s in finish_sites(scope, self.program)]

    def classify_module(self, module: SourceModule) -> list:
        """Every finish site in ``module``, in source order."""
        out: list[SiteClassification] = []
        mscope = self.program.module_scope[module.path]
        out.extend(self.classify_scope(mscope))
        for scope in iter_function_scopes(self.program, module):
            out.extend(self.classify_scope(scope))
        out.sort(key=lambda c: c.lineno)
        return out


def classify_program(program: Program) -> list:
    """Every finish site of every analyzed module, grouped by file."""
    inference = Inference(program)
    out: list[SiteClassification] = []
    for module in program.modules:
        out.extend(inference.classify_module(module))
    return out
