"""Static-vs-dynamic agreement: replay analyzer suggestions against the
runtime's fork validation.

The recorder patches :meth:`FinishScope.__enter__` so every finish opened
during a simulation remembers where it was opened (file, line — the same
coordinates the static analyzer reports) and which forks it governed.  The
checker then classifies each recorded site statically and replays the
recorded fork sequence through the *suggested* implementation's
``validate_fork``: a suggestion the runtime would reject with
:class:`~repro.errors.PragmaError` is a disagreement.  This is the
"suggestions agree with runtime validation" acceptance gate run over all
shipped kernels.
"""

from __future__ import annotations

import contextlib
import os
import sys
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.analyze.infer import Inference, SiteClassification
from repro.analyze.sourcemodel import Program
from repro.errors import PragmaError
from repro.runtime import activity
from repro.runtime.finish import _IMPLEMENTATIONS
from repro.runtime.finish.pragmas import Pragma


@dataclass
class RuntimeSite:
    """One finish instance observed at runtime."""

    path: str
    lineno: int
    pragma: Pragma
    home: int
    forks: list = field(default_factory=list)  # (src, dst) in fork order


@contextlib.contextmanager
def record_finish_sites() -> Iterator[list]:
    """Patch FinishScope.__enter__ to record every finish's site and forks."""
    records: list[RuntimeSite] = []
    orig_enter = activity.FinishScope.__enter__

    def patched(self):
        frame = sys._getframe(1)
        fin = orig_enter(self)
        rec = RuntimeSite(
            path=frame.f_code.co_filename,
            lineno=frame.f_lineno,
            pragma=fin.pragma,
            home=fin.home,
        )
        records.append(rec)
        orig_fork = fin.fork

        def fork(src: int, dst: int) -> None:
            rec.forks.append((src, dst))
            return orig_fork(src, dst)

        fin.fork = fork
        return fin

    activity.FinishScope.__enter__ = patched
    try:
        yield records
    finally:
        activity.FinishScope.__enter__ = orig_enter


class _ShadowFinish:
    """The minimal state validate_fork implementations read."""

    def __init__(self, home: int, name: str) -> None:
        self.home = home
        self.name = name
        self.total_forks = 0


def replay(pragma: Pragma, home: int, forks: list, name: str = "replay") -> Optional[str]:
    """Drive the fork sequence through ``pragma``'s validation.

    Returns None on success, or the PragmaError message on rejection.
    """
    cls = _IMPLEMENTATIONS[pragma]
    shadow = _ShadowFinish(home, name)
    for src, dst in forks:
        try:
            cls.validate_fork(shadow, src, dst)
        except PragmaError as exc:
            return str(exc)
        shadow.total_forks += 1
    return None


@dataclass
class AgreementRecord:
    """The verdict for one runtime finish site under one kernel."""

    kernel: str
    path: str
    lineno: int
    annotated: Pragma
    suggestion: Optional[Pragma]  # None when the site could not be classified
    forks: int
    error: Optional[str]  # replay failure message, None when in agreement

    @property
    def ok(self) -> bool:
        return self.error is None


class _SiteIndex:
    """Lazy static classification of whatever files the runtime touched."""

    def __init__(self) -> None:
        self.program = Program()
        self._inference: Optional[Inference] = None
        self._classified: dict[str, dict[int, SiteClassification]] = {}

    def lookup(self, path: str, lineno: int) -> Optional[SiteClassification]:
        path = os.path.abspath(path)
        if path not in self._classified:
            if not os.path.exists(path):
                self._classified[path] = {}
            else:
                module = self.program.add_file(path)
                # new module: resolution tables changed, drop memoized closures
                self._inference = Inference(self.program)
                self._classified[path] = {
                    c.lineno: c for c in self._inference.classify_module(module)
                }
        return self._classified[path].get(lineno)


def check_kernel(kernel: str, places: int = 4, index: Optional[_SiteIndex] = None) -> list:
    """Run one kernel, classify every finish site it opened, and replay the
    recorded forks through the suggested pragma."""
    from repro.harness.runner import simulate

    index = index if index is not None else _SiteIndex()
    with record_finish_sites() as records:
        simulate(kernel, places=places)
    by_site: dict = {}
    for rec in records:
        by_site.setdefault((rec.path, rec.lineno), []).append(rec)
    out: list[AgreementRecord] = []
    for (path, lineno), recs in sorted(by_site.items()):
        c = index.lookup(path, lineno)
        error = None
        if c is not None:
            for rec in recs:  # every instance of the site must validate
                error = replay(c.suggestion, rec.home, rec.forks, name=f"{kernel}-replay")
                if error is not None:
                    break
        out.append(
            AgreementRecord(
                kernel=kernel,
                path=path,
                lineno=lineno,
                annotated=recs[0].pragma,
                suggestion=c.suggestion if c is not None else None,
                forks=max(len(r.forks) for r in recs),
                error=error,
            )
        )
    return out


def check_agreement(kernels: Optional[list] = None, places: int = 4) -> list:
    """Agreement records for every shipped kernel (the acceptance check)."""
    from repro.harness.runner import KERNELS

    index = _SiteIndex()
    out: list[AgreementRecord] = []
    for kernel in kernels if kernels is not None else list(KERNELS):
        out.extend(check_kernel(kernel, places=places, index=index))
    return out
